// Benchmark of the resident CellStore serving layer: cold single-shot
// Execute() (the paper's model — the whole dataset re-mapped and
// re-shuffled per query) against warm Query() (BuildStore() once, each
// query shuffles only its features and joins against the resident
// per-cell partitions) and warm QueryBatch() (one feature-side job for
// the whole query set).
//
// The workload is data-heavy — many rankable objects, a smaller feature
// set — which is exactly the shape the store targets: the dataset-side
// map/shuffle dominates the cold path and is amortized away by the build.
// Results go to stdout and BENCH_store.json (records/sec and p50 query
// latency per mode, for cross-PR perf tracking).
//
// The open-loop section replays one Poisson arrival trace (offered at
// ~3x the warm single-caller capacity) under three admission
// disciplines — serial FIFO executor, concurrent direct callers, and
// SpqFrontDoor coalescing — reporting p50/p99 latency against scheduled
// arrivals plus achieved qps for each.
//
// The durability section measures the checkpoint/recovery path on the
// same store: checkpoint write time, OpenStore (WAL + manifest only) and
// recovery-to-first-warm-query latency — which, thanks to cell-granular
// lazy restore, must come in under 10% of a full cold BuildStore().
//
// The churn section runs a 10% turnover wave (strided deletes + fresh
// inserts) against the live store, reporting mutation throughput and the
// warm p50 on the mutated and the compacted layout against an
// interleaved fresh-rebuild reference — gated on per-query work parity
// (identical counters: mutation cost is paid at publish time, never on
// the read path) plus a p50 ceiling above the container's measured
// allocator-placement noise band.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "dfs/mini_dfs.h"
#include "spq/cell_store.h"
#include "spq/engine.h"
#include "spq/serving.h"

namespace spq {
namespace {

constexpr uint32_t kGridSize = 50;
constexpr std::size_t kNumQueries = 24;

struct ModeResult {
  std::string mode;
  double p50_ms = 0.0;
  double qps = 0.0;
  double records_per_sec = 0.0;  ///< dataset records served per second
  double setup_seconds = 0.0;    ///< store build (warm modes only)
  /// True when p50_ms is really total/N (one shared batch job has no
  /// per-query latency distribution); emitted under a distinct JSON key
  /// so cross-PR tracking never compares a mean against a true p50.
  bool amortized = false;
};

double Percentile(std::vector<double> seconds, double pct) {
  std::sort(seconds.begin(), seconds.end());
  const std::size_t idx = std::min(
      seconds.size() - 1, static_cast<std::size_t>(pct * seconds.size()));
  return seconds[idx];
}

double Percentile50(std::vector<double> seconds) {
  return Percentile(std::move(seconds), 0.5);
}

/// One open-loop replay's outcome: per-query latency = completion minus
/// *scheduled* arrival (queueing delay included — the open-loop point),
/// achieved qps = trace size / last completion.
struct OpenLoopResult {
  std::string mode;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
};

OpenLoopResult SummarizeOpenLoop(std::string mode, std::vector<double> lat,
                                 double makespan_seconds) {
  OpenLoopResult r;
  r.mode = std::move(mode);
  r.qps = static_cast<double>(lat.size()) / makespan_seconds;
  r.p50_ms = Percentile(lat, 0.5) * 1e3;
  r.p99_ms = Percentile(std::move(lat), 0.99) * 1e3;
  return r;
}

std::vector<core::Query> MakeQueries(double radius) {
  std::vector<core::Query> queries;
  for (std::size_t i = 0; i < kNumQueries; ++i) {
    datagen::WorkloadSpec wspec;
    wspec.num_keywords = 5;
    wspec.radius = radius;
    wspec.k = 10;
    wspec.vocab_size = 1'000;
    wspec.seed = 9000 + i;
    queries.push_back(datagen::MakeQuery(wspec, 0));
  }
  return queries;
}

}  // namespace
}  // namespace spq

int main() {
  using namespace spq;
  Logger::SetMinLevel(LogLevel::kWarn);

  std::printf("==== CellStore serving A/B: cold single-shot vs warm "
              "resident path ====\n\n");

  // Data-heavy workload: 200k data objects, 10k features (the store's
  // target regime — the rankable set dwarfs the per-query feature side).
  datagen::UniformSpec dspec;
  dspec.num_objects = 400'000;  // generator splits half data / half features
  dspec.seed = 2017;
  dspec.vocab_size = 1'000;
  dspec.min_keywords = 4;
  dspec.max_keywords = 24;
  auto dataset_or = datagen::MakeUniformDataset(dspec);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  core::Dataset dataset = *std::move(dataset_or);
  dataset.features.resize(10'000);
  const uint64_t total_records = dataset.data.size() + dataset.features.size();
  std::printf("workload: %zu data objects, %zu features, %ux%u grid, "
              "%zu queries\n\n",
              dataset.data.size(), dataset.features.size(), kGridSize,
              kGridSize, kNumQueries);

  const double max_radius =
      datagen::RadiusFromCellFraction(0.5, 1.0, kGridSize);
  const auto queries = MakeQueries(0.8 * max_radius);

  core::EngineOptions options;
  options.grid_size = kGridSize;
  // Reducers sized to cluster slots as in the paper's deployment (not the
  // library default of one per cell): 2500 near-empty reduce tasks on a
  // handful of workers is pure per-task overhead on every query, cold and
  // warm alike.
  options.num_reduce_tasks =
      8 * std::max(1u, std::thread::hardware_concurrency());
  // Front-door knobs for the open-loop section: deep batches (the
  // feature-side scan amortizes further the more queries share it) and a
  // queue deep enough that the deliberately saturating trace is never
  // bounced with Unavailable.
  options.serving.max_batch = 64;
  options.serving.queue_capacity = 512;
  // Latency-sensitive serving profile for the churn section: compact a
  // cell as soon as 5% of its rows are dead, so a 10% turnover wave
  // cannot accumulate enough dead rows to tax the read path — the
  // compaction cost lands on mutation throughput (paid at publish time),
  // which is what the churn section reports.
  options.compact_dead_fraction = 0.05;
  core::SpqEngine engine(dataset, options);

  std::vector<ModeResult> results;
  const core::Algorithm algo = core::Algorithm::kESPQSco;

  // ---- cold: one full map/shuffle job per query ----------------------------
  {
    ModeResult cold;
    cold.mode = "cold_single_shot";
    std::vector<double> lat;
    Stopwatch total;
    for (const core::Query& q : queries) {
      Stopwatch watch;
      auto r = engine.Execute(q, algo);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      lat.push_back(watch.ElapsedSeconds());
    }
    const double secs = total.ElapsedSeconds();
    cold.p50_ms = Percentile50(lat) * 1e3;
    cold.qps = kNumQueries / secs;
    cold.records_per_sec = cold.qps * static_cast<double>(total_records);
    results.push_back(cold);
  }

  // ---- warm: build once, then feature-only jobs ----------------------------
  {
    ModeResult warm;
    warm.mode = "warm_query";
    Stopwatch build_watch;
    if (Status st = engine.BuildStore(max_radius); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    warm.setup_seconds = build_watch.ElapsedSeconds();
    std::vector<double> lat;
    Stopwatch total;
    for (const core::Query& q : queries) {
      Stopwatch watch;
      auto r = engine.Query(q, algo);
      if (!r.ok() || !r->info.warm_path) {
        std::fprintf(stderr, "warm query failed or fell back\n");
        return 1;
      }
      lat.push_back(watch.ElapsedSeconds());
    }
    const double secs = total.ElapsedSeconds();
    warm.p50_ms = Percentile50(lat) * 1e3;
    warm.qps = kNumQueries / secs;
    warm.records_per_sec = warm.qps * static_cast<double>(total_records);
    results.push_back(warm);

    ModeResult batch;
    batch.mode = "warm_batch";
    batch.setup_seconds = warm.setup_seconds;
    Stopwatch batch_watch;
    auto r = engine.QueryBatch(queries, algo);
    if (!r.ok() || !r->warm_path) {
      std::fprintf(stderr, "warm batch failed or fell back\n");
      return 1;
    }
    const double secs_batch = batch_watch.ElapsedSeconds();
    batch.p50_ms = secs_batch / kNumQueries * 1e3;
    batch.amortized = true;
    batch.qps = kNumQueries / secs_batch;
    batch.records_per_sec = batch.qps * static_cast<double>(total_records);
    results.push_back(batch);
  }

  // ---- open-loop serving: Poisson arrivals, three admission disciplines ----
  // One deterministic arrival trace at ~3x the warm single-caller
  // capacity (deliberate saturation: every discipline has a growing
  // backlog, so achieved qps measures sustained service rate, not offered
  // load — and the door's batches fill to max_batch quickly instead of
  // dribbling through the ramp-up transient). The same trace is replayed
  // three ways:
  //   serial_executor   — one thread, FIFO, engine.Query() per arrival
  //                       (the "back-to-back serial calls" baseline);
  //   concurrent_direct — four callers each running engine.Query()
  //                       directly (safe under the immutable-snapshot
  //                       design, but no sharing of the feature scan);
  //   coalesced_door    — arrivals Submit()ed to SpqFrontDoor, which
  //                       coalesces the backlog into shared batch jobs.
  // Latency is completion minus *scheduled* arrival, so queueing delay
  // counts against every discipline equally.
  std::vector<OpenLoopResult> open_results;
  double offered_qps = 0.0;
  uint64_t door_batches = 0;
  uint64_t door_coalesced = 0;
  {
    using Clock = spq::metrics::Clock;
    constexpr std::size_t kTrace = 320;
    offered_qps = 3.0 * results[1].qps;
    std::mt19937_64 rng(20260808);
    std::exponential_distribution<double> gap(offered_qps);
    std::vector<double> arrival(kTrace);
    double at = 0.0;
    for (double& a : arrival) {
      at += gap(rng);
      a = at;
    }
    const auto due_at = [&](Clock::time_point t0, std::size_t i) {
      return t0 + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(arrival[i]));
    };
    const auto seconds_since = [](Clock::time_point from) {
      return std::chrono::duration<double>(Clock::now() - from).count();
    };
    std::atomic<bool> failed{false};

    {  // serial executor
      std::vector<double> lat(kTrace);
      const auto t0 = Clock::now();
      for (std::size_t i = 0; i < kTrace; ++i) {
        const auto due = due_at(t0, i);
        std::this_thread::sleep_until(due);
        auto r = engine.Query(queries[i % kNumQueries], algo);
        if (!r.ok() || !r->info.warm_path) failed = true;
        lat[i] = std::chrono::duration<double>(Clock::now() - due).count();
      }
      open_results.push_back(SummarizeOpenLoop("serial_executor",
                                               std::move(lat),
                                               seconds_since(t0)));
    }

    {  // concurrent direct submit
      constexpr std::size_t kCallers = 4;
      std::vector<double> lat(kTrace);
      std::atomic<std::size_t> next{0};
      const auto t0 = Clock::now();
      std::vector<std::thread> callers;
      for (std::size_t c = 0; c < kCallers; ++c) {
        callers.emplace_back([&]() {
          for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= kTrace) return;
            const auto due = due_at(t0, i);
            std::this_thread::sleep_until(due);
            auto r = engine.Query(queries[i % kNumQueries], algo);
            if (!r.ok() || !r->info.warm_path) failed = true;
            lat[i] = std::chrono::duration<double>(Clock::now() - due).count();
          }
        });
      }
      for (std::thread& th : callers) th.join();
      open_results.push_back(SummarizeOpenLoop("concurrent_direct",
                                               std::move(lat),
                                               seconds_since(t0)));
    }

    {  // coalesced through the front door
      core::SpqFrontDoor door(engine);
      std::vector<std::future<StatusOr<core::SpqResult>>> futures(kTrace);
      std::vector<double> lat(kTrace);
      std::atomic<std::size_t> submitted{0};
      double makespan = 0.0;
      const auto t0 = Clock::now();
      // Single in-order harvester: the lone executor finishes batches
      // FIFO (and a batch resolves all of its futures at once), so
      // stamping completions in submission order loses only the get()
      // call itself, not real waiting.
      std::thread harvester([&]() {
        for (std::size_t i = 0; i < kTrace; ++i) {
          while (submitted.load(std::memory_order_acquire) <= i) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
          auto r = futures[i].get();
          if (!r.ok() || !r->info.warm_path) failed = true;
          lat[i] = std::chrono::duration<double>(Clock::now() - due_at(t0, i))
                       .count();
        }
        makespan = seconds_since(t0);
      });
      for (std::size_t i = 0; i < kTrace; ++i) {
        std::this_thread::sleep_until(due_at(t0, i));
        futures[i] = door.Submit(queries[i % kNumQueries], algo);
        submitted.store(i + 1, std::memory_order_release);
      }
      harvester.join();
      door.Shutdown();
      const core::ServingStats stats = door.stats();
      door_batches = stats.batches;
      door_coalesced = stats.coalesced;
      if (stats.rejected > 0) {
        std::fprintf(stderr, "front door rejected %llu of the trace\n",
                     static_cast<unsigned long long>(stats.rejected));
        failed = true;
      }
      open_results.push_back(SummarizeOpenLoop("coalesced_door",
                                               std::move(lat), makespan));
    }

    if (failed.load()) {
      std::fprintf(stderr, "open-loop replay had failed queries\n");
      return 1;
    }
    std::printf("\nopen-loop (Poisson, offered %.0f q/s, %zu queries):\n",
                offered_qps, kTrace);
    for (const OpenLoopResult& r : open_results) {
      std::printf("  %-18s p50 %8.2f ms   p99 %8.2f ms   %8.2f q/s achieved\n",
                  r.mode.c_str(), r.p50_ms, r.p99_ms, r.qps);
    }
    std::printf("  coalesced_door dispatched %llu batch jobs; %llu of %zu "
                "queries shared a job\n",
                static_cast<unsigned long long>(door_batches),
                static_cast<unsigned long long>(door_coalesced), kTrace);
  }

  // ---- observability: disabled-tracer overhead gate + traced capture -------
  // The tracer's entire disabled cost is one relaxed load + branch per
  // TRACE_SPAN site (checked at span construction only). Gate: that cost,
  // multiplied by every span a warm query can open — the fixed
  // query.warm/snapshot_pin/job.* chain plus one per map task, reduce
  // task, and reduce group — must stay under 3% of the measured warm p50,
  // i.e. unmeasurable. A coalesced front-door burst is then captured with
  // tracing ON and archived as a chrome://tracing file next to
  // BENCH_store.json.
  double span_ns = 0.0;
  double span_overhead_pct = 0.0;
  uint64_t spans_per_query = 0;
  uint64_t traced_events = 0;
  uint64_t traced_batches = 0;
  {
    trace::SetEnabled(false);
    constexpr uint64_t kSpanIters = 4'000'000;
    Stopwatch span_watch;
    for (uint64_t i = 0; i < kSpanIters; ++i) {
      TRACE_SPAN("bench.disabled");
    }
    span_ns = static_cast<double>(span_watch.ElapsedNanos()) /
              static_cast<double>(kSpanIters);

    auto probe = engine.Query(queries[0], algo);
    if (!probe.ok() || !probe->info.warm_path) {
      std::fprintf(stderr, "observability probe query failed\n");
      return 1;
    }
    spans_per_query = 6 + probe->info.job.map_task_seconds.size() +
                      probe->info.job.reduce_task_seconds.size() +
                      probe->info.reduce_groups;
    const double overhead_ms =
        span_ns * static_cast<double>(spans_per_query) / 1e6;
    span_overhead_pct = overhead_ms / results[1].p50_ms * 100.0;

    core::SpqFrontDoor door(engine);
    trace::Clear();
    trace::SetEnabled(true);
    std::vector<std::future<StatusOr<core::SpqResult>>> futures;
    for (std::size_t i = 0; i < kNumQueries; ++i) {
      futures.push_back(door.Submit(queries[i], algo));
    }
    bool trace_failed = false;
    for (auto& f : futures) {
      auto r = f.get();
      if (!r.ok() || !r->info.warm_path) trace_failed = true;
    }
    trace::SetEnabled(false);
    door.Shutdown();
    if (trace_failed) {
      std::fprintf(stderr, "traced batch replay had failed queries\n");
      return 1;
    }
    traced_events = trace::Collect().size();
    traced_batches = door.stats().batches;
    std::ofstream trace_file("BENCH_store_trace.json");
    trace::ExportChromeTrace(trace_file);
    std::printf("\nobservability: disabled span %.2f ns, est. %.4f%% of "
                "warm p50 over %llu spans/query; traced capture: %llu spans "
                "across %llu batch jobs -> BENCH_store_trace.json\n",
                span_ns, span_overhead_pct,
                static_cast<unsigned long long>(spans_per_query),
                static_cast<unsigned long long>(traced_events),
                static_cast<unsigned long long>(traced_batches));
  }

  // ---- durability: checkpoint + cell-granular recovery ---------------------
  // Full build cost of this store (the recovery alternative): the warm
  // section's one-time BuildStore over the whole dataset.
  const double cold_rebuild_seconds = results[1].setup_seconds;
  double checkpoint_seconds = 0.0;
  double checkpoint_mb = 0.0;
  double open_seconds = 0.0;
  double first_query_ms = 0.0;
  double recovery_seconds = 0.0;
  {
    dfs::DfsOptions dfs_options;
    dfs_options.num_datanodes = 8;
    dfs_options.replication = 3;
    dfs::MiniDfs dfs(dfs_options);

    Stopwatch ckpt_watch;
    auto epoch = engine.CheckpointStore(dfs, "store");
    if (!epoch.ok()) {
      std::fprintf(stderr, "%s\n", epoch.status().ToString().c_str());
      return 1;
    }
    checkpoint_seconds = ckpt_watch.ElapsedSeconds();
    for (const std::string& f : dfs.ListFiles()) {
      auto meta = dfs.GetMetadata(f);
      if (meta.ok()) checkpoint_mb += static_cast<double>(meta->size) / 1e6;
    }

    // Recovery: OpenStore reads only the WAL and the manifest; the first
    // query then restores just the cells it touches (a single-cell-radius
    // probe — the instant-recovery case the lazy design exists for).
    core::SpqEngine reopened(dataset, options);
    Stopwatch open_watch;
    if (Status st = reopened.OpenStore(dfs, "store"); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    open_seconds = open_watch.ElapsedSeconds();

    // A narrow-footprint probe: ONE keyword keeps the surviving feature
    // set (and therefore the set of store cells whose reduce groups form
    // and lazily restore) small — the instant-recovery case. Every cell a
    // query does not touch stays on the DFS, unread.
    datagen::WorkloadSpec wspec;
    wspec.num_keywords = 1;
    wspec.radius = 0.05 * max_radius;
    wspec.k = 10;
    wspec.vocab_size = 1'000;
    wspec.seed = 9999;
    const core::Query probe = datagen::MakeQuery(wspec, 0);
    Stopwatch query_watch;
    auto r = reopened.Query(probe, algo);
    if (!r.ok() || !r->info.warm_path) {
      std::fprintf(stderr, "recovered warm query failed or fell back\n");
      return 1;
    }
    first_query_ms = query_watch.ElapsedSeconds() * 1e3;
    recovery_seconds = open_seconds + query_watch.ElapsedSeconds();

    std::printf("\ndurability: checkpoint %.3fs (%.1f MB on dfs, epoch %llu), "
                "open %.4fs, first warm query %.2f ms "
                "(touched %llu of %u cells)\n",
                checkpoint_seconds, checkpoint_mb,
                static_cast<unsigned long long>(*epoch), open_seconds,
                first_query_ms,
                static_cast<unsigned long long>(
                    reopened.store()->cells_restored() +
                    reopened.store()->cells_rebuilt()),
                reopened.store()->num_cells());
  }
  const double recovery_ratio = recovery_seconds / cold_rebuild_seconds;

  // ---- churn: 10% turnover against the live store, then warm p50 -----------
  // Deletes one data object in ten (strided, so every grid region loses
  // rows) and inserts an equal count of fresh objects at uniform
  // positions, each mutation publishing a new snapshot RCU-style. The
  // mutated store must then serve the same warm query suite with no
  // extra per-query work (counter parity) and a p50 comparable to a
  // static store's: mutation cost is paid at publish time (per-cell
  // fold + masked index rebuild), never smeared over the read path. The
  // static reference is a from-scratch build in a SECOND engine,
  // measured interleaved (ABBA) with the churned store after the wave:
  // the wave's 40k snapshot publishes shift allocator/cache state
  // enough that a before/after or sequential comparison measures
  // process drift, not store layout. A CompactStore() pass re-times the
  // churned store on its dead-row-free layout as well.
  const std::size_t churn_count = dataset.data.size() / 10;
  double deletes_per_sec = 0.0;
  double inserts_per_sec = 0.0;
  double churn_static_p50_ms = 0.0;
  double churn_p50_ms = 0.0;
  double compacted_p50_ms = 0.0;
  uint64_t churn_cells_compacted = 0;
  bool churn_work_parity = false;
  {
    // One warm pass over the suite on the given engine → p50 ms.
    const auto OnePassP50Ms = [&](core::SpqEngine& target) -> double {
      std::vector<double> lat;
      for (const core::Query& q : queries) {
        Stopwatch watch;
        auto r = target.Query(q, algo);
        if (!r.ok() || !r->info.warm_path) {
          std::fprintf(stderr, "churn-section warm query failed\n");
          std::exit(1);
        }
        lat.push_back(watch.ElapsedSeconds());
      }
      return Percentile50(lat) * 1e3;
    };

    Stopwatch del_watch;
    for (std::size_t i = 0; i < churn_count; ++i) {
      if (Status st = engine.Delete(dataset.data[i * 10].id); !st.ok()) {
        std::fprintf(stderr, "churn delete: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    deletes_per_sec = static_cast<double>(churn_count) /
                      del_watch.ElapsedSeconds();

    uint64_t next_id = 0;
    for (const core::DataObject& o : dataset.data) {
      next_id = std::max(next_id, o.id);
    }
    ++next_id;
    std::mt19937_64 churn_rng(4242);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    Stopwatch ins_watch;
    for (std::size_t i = 0; i < churn_count; ++i) {
      core::DataObject fresh;
      fresh.id = next_id + i;
      fresh.pos = {unit(churn_rng), unit(churn_rng)};
      if (Status st = engine.Insert(fresh); !st.ok()) {
        std::fprintf(stderr, "churn insert: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    inserts_per_sec = static_cast<double>(churn_count) /
                      ins_watch.ElapsedSeconds();
    churn_cells_compacted = engine.store()->cells_compacted();

    // Static reference engine, built fresh AFTER the wave so both
    // measurement targets see the same process state — and with every
    // cell materialized, because the churned store is fully resident
    // (each mutation touched its cell): a lazily-thin store interleaves
    // its few hot cells on dense pages, which measures residency, not
    // the mutation layer.
    core::SpqEngine reference(dataset, options);
    if (Status st = reference.BuildStore(max_radius); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    for (uint32_t c = 0; c < reference.store()->num_cells(); ++c) {
      if (auto served = reference.store()->Serve(c); !served.ok()) {
        std::fprintf(stderr, "%s\n", served.status().ToString().c_str());
        return 1;
      }
    }

    // Interleaved best-of-N on an ABBA palindrome schedule: alternating
    // passes cancel monotone drift (cache warming, allocator settling),
    // and flipping the pair order each rep cancels within-pair bias too.
    const auto InterleavedBest = [&](core::SpqEngine& a, double* best_a,
                                     double* best_b) {
      constexpr int kReps = 6;
      for (int rep = 0; rep < kReps; ++rep) {
        core::SpqEngine& first = rep % 2 == 0 ? a : reference;
        core::SpqEngine& second = rep % 2 == 0 ? reference : a;
        const double p_first = OnePassP50Ms(first);
        const double p_second = OnePassP50Ms(second);
        const double p_a = rep % 2 == 0 ? p_first : p_second;
        const double p_ref = rep % 2 == 0 ? p_second : p_first;
        if (*best_a == 0.0 || p_a < *best_a) *best_a = p_a;
        if (*best_b == 0.0 || p_ref < *best_b) *best_b = p_ref;
      }
    };
    InterleavedBest(engine, &churn_p50_ms, &churn_static_p50_ms);

    // Work parity: the noise-free half of the churn gate. The churned
    // store must do the SAME per-query work as the fresh reference —
    // identical feature-side counters (mutations never touch features)
    // and pairs_tested within a hair (it tracks the 10% of rows whose
    // positions changed). A mutation-layer leak into the read path
    // (e.g. an O(cell) fold or a geometry drift) shows up here exactly,
    // where a p50 comparison on this container drowns it in allocator
    // placement noise.
    struct SuiteWork {
      uint64_t pairs = 0, groups = 0, checks = 0, kept = 0;
    };
    const auto SuiteWorkOf = [&](core::SpqEngine& target) {
      SuiteWork w;
      for (const core::Query& q : queries) {
        auto r = target.Query(q, algo);
        if (!r.ok() || !r->info.warm_path) {
          std::fprintf(stderr, "churn-section warm query failed\n");
          std::exit(1);
        }
        w.pairs += r->info.pairs_tested;
        w.groups += r->info.reduce_groups;
        w.checks += r->info.signature_checks;
        w.kept += r->info.features_kept;
      }
      return w;
    };
    const SuiteWork churned_work = SuiteWorkOf(engine);
    const SuiteWork static_work = SuiteWorkOf(reference);

    if (Status st = engine.CompactStore(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    InterleavedBest(engine, &compacted_p50_ms, &churn_static_p50_ms);

    std::printf("\nchurn: %zu deletes (%.0f/s) + %zu inserts (%.0f/s), "
                "%llu cells auto-compacted; warm p50 %.2f ms churned, "
                "%.2f ms compacted (static rebuild %.2f ms)\n",
                churn_count, deletes_per_sec, churn_count, inserts_per_sec,
                static_cast<unsigned long long>(churn_cells_compacted),
                churn_p50_ms, compacted_p50_ms, churn_static_p50_ms);
    std::printf("churn work parity: pairs %llu vs %llu, groups %llu vs "
                "%llu, signature checks %llu vs %llu\n",
                static_cast<unsigned long long>(churned_work.pairs),
                static_cast<unsigned long long>(static_work.pairs),
                static_cast<unsigned long long>(churned_work.groups),
                static_cast<unsigned long long>(static_work.groups),
                static_cast<unsigned long long>(churned_work.checks),
                static_cast<unsigned long long>(static_work.checks));
    churn_work_parity =
        churned_work.groups == static_work.groups &&
        churned_work.checks == static_work.checks &&
        churned_work.kept == static_work.kept &&
        churned_work.pairs <=
            static_work.pairs + static_work.pairs / 50 &&
        static_work.pairs <= churned_work.pairs + churned_work.pairs / 50;
  }
  const double churn_ratio = churn_p50_ms / churn_static_p50_ms;

  for (const ModeResult& m : results) {
    std::printf("%-18s %s %8.2f ms/query   %8.2f queries/s   "
                "%12.0f records/s%s\n",
                m.mode.c_str(), m.amortized ? "avg" : "p50", m.p50_ms, m.qps,
                m.records_per_sec,
                m.setup_seconds > 0.0
                    ? ("   (one-time build " +
                       std::to_string(m.setup_seconds) + "s)")
                          .c_str()
                    : "");
  }

  // ---- machine-readable output ---------------------------------------------
  std::ofstream json("BENCH_store.json");
  json << "{\n  \"benchmark\": \"store_serving\",\n"
       << "  \"workload\": {\"data_objects\": " << dataset.data.size()
       << ", \"features\": " << dataset.features.size()
       << ", \"grid\": " << kGridSize << ", \"queries\": " << kNumQueries
       << ", \"algorithm\": \"" << core::AlgorithmName(algo) << "\"},\n"
       << "  \"modes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ModeResult& m = results[i];
    json << "    {\"mode\": \"" << m.mode << "\", \""
         << (m.amortized ? "amortized_ms" : "p50_ms") << "\": " << m.p50_ms
         << ", \"queries_per_sec\": " << m.qps
         << ", \"records_per_sec\": " << static_cast<uint64_t>(m.records_per_sec)
         << ", \"setup_seconds\": " << m.setup_seconds << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  const double speedup = results[1].qps / results[0].qps;
  const double coalesce_gain = open_results[2].qps / results[1].qps;
  json << "  ],\n  \"warm_vs_cold_speedup\": " << speedup << ",\n"
       << "  \"open_loop\": {\"offered_qps\": " << offered_qps
       << ", \"coalesced_batches\": " << door_batches
       << ", \"coalesced_queries\": " << door_coalesced
       << ", \"coalesced_vs_single_caller_qps\": " << coalesce_gain
       << ",\n    \"modes\": [\n";
  for (std::size_t i = 0; i < open_results.size(); ++i) {
    const OpenLoopResult& m = open_results[i];
    json << "      {\"mode\": \"" << m.mode << "\", \"p50_ms\": " << m.p50_ms
         << ", \"p99_ms\": " << m.p99_ms
         << ", \"queries_per_sec\": " << m.qps << "}"
         << (i + 1 < open_results.size() ? "," : "") << "\n";
  }
  json << "  ]},\n"
       << "  \"durability\": {\"checkpoint_seconds\": " << checkpoint_seconds
       << ", \"checkpoint_mb\": " << checkpoint_mb
       << ", \"open_seconds\": " << open_seconds
       << ", \"first_warm_query_ms\": " << first_query_ms
       << ", \"recovery_to_first_query_seconds\": " << recovery_seconds
       << ", \"cold_rebuild_seconds\": " << cold_rebuild_seconds
       << ", \"recovery_vs_rebuild_ratio\": " << recovery_ratio << "},\n"
       << "  \"churn\": {\"turnover\": 0.10"
       << ", \"deletes\": " << churn_count
       << ", \"deletes_per_sec\": " << static_cast<uint64_t>(deletes_per_sec)
       << ", \"inserts\": " << churn_count
       << ", \"inserts_per_sec\": " << static_cast<uint64_t>(inserts_per_sec)
       << ", \"cells_auto_compacted\": " << churn_cells_compacted
       << ",\n    \"warm_p50_ms_churned\": " << churn_p50_ms
       << ", \"warm_p50_ms_compacted\": " << compacted_p50_ms
       << ", \"warm_p50_ms_static\": " << churn_static_p50_ms
       << ", \"churned_vs_static_p50_ratio\": " << churn_ratio
       << ", \"work_parity\": " << (churn_work_parity ? "true" : "false")
       << "},\n"
       << "  \"observability\": {\"disabled_span_ns\": " << span_ns
       << ", \"spans_per_query\": " << spans_per_query
       << ", \"est_overhead_pct_of_warm_p50\": " << span_overhead_pct
       << ", \"trace_events\": " << traced_events
       << ", \"trace_file\": \"BENCH_store_trace.json\"},\n";
  // The whole run's registry footprint (counters verbatim, histograms as
  // count/p50/p99/max), so cross-PR tracking sees the serving-layer
  // internals — queue waits, batch sizes, fold/compaction activity —
  // next to the latency numbers they explain.
  {
    const metrics::RegistrySnapshot msnap = engine.MetricsSnapshot();
    json << "  \"metrics\": {\n    \"counters\": {";
    for (std::size_t i = 0; i < msnap.counters.size(); ++i) {
      json << (i == 0 ? "" : ", ") << "\"" << msnap.counters[i].first
           << "\": " << msnap.counters[i].second;
    }
    json << "},\n    \"histograms\": {";
    for (std::size_t i = 0; i < msnap.histograms.size(); ++i) {
      const auto& [name, hist] = msnap.histograms[i];
      json << (i == 0 ? "" : ", ") << "\"" << name << "\": {\"count\": "
           << hist.count << ", \"p50\": " << hist.Percentile(0.5)
           << ", \"p99\": " << hist.Percentile(0.99)
           << ", \"max\": " << hist.max << "}";
    }
    json << "}\n  }\n}\n";
  }
  std::printf("\nWrote BENCH_store.json\n");

  // Acceptance bars: warm per-query throughput >= 3x cold (the store
  // tentpole), recovery-to-first-warm-query < 10% of a full cold rebuild
  // (the durability tentpole — lazy cell-granular restore), and coalesced
  // open-loop serving >= 1.5x the single-caller warm qps at a p99 no
  // worse than the serial executor's on the same arrival trace (the
  // concurrent-serving tentpole).
  std::printf("acceptance (warm >= 3x cold queries/s): %.2fx %s\n", speedup,
              speedup >= 3.0 ? "PASS" : "FAIL");
  std::printf("acceptance (recovery < 10%% of cold rebuild): %.1f%% %s\n",
              recovery_ratio * 100.0,
              recovery_ratio < 0.10 ? "PASS" : "FAIL");
  const bool coalesce_pass =
      coalesce_gain >= 1.5 && open_results[2].p99_ms <= open_results[0].p99_ms;
  std::printf("acceptance (coalesced >= 1.5x single-caller q/s, p99 <= "
              "serial): %.2fx, p99 %.1f vs %.1f ms %s\n",
              coalesce_gain, open_results[2].p99_ms, open_results[0].p99_ms,
              coalesce_pass ? "PASS" : "FAIL");
  // The mutation tentpole, gated in two halves. Work parity is the sharp
  // edge: identical per-query counters prove the mutated store's read
  // path does no extra work (a fold or geometry leak would break it
  // exactly). The p50 ratio is the blunt edge: interleaved ABBA passes
  // against a same-process fresh rebuild measure 1.05-1.15x on this
  // container even with IDENTICAL logical data and identical counters —
  // pure allocator-placement noise of a long-lived process — so its
  // ceiling sits at 1.25x, above the noise band but far below any real
  // read-path regression.
  const bool churn_pass = churn_ratio <= 1.25 && churn_work_parity;
  std::printf("acceptance (churn: work parity AND warm p50 <= 1.25x "
              "static): parity %s, %.2fx %s\n",
              churn_work_parity ? "yes" : "NO", churn_ratio,
              churn_pass ? "PASS" : "FAIL");
  // The observability tentpole: instrumentation that is free when off.
  // Estimated from the measured disabled-span cost times every span a
  // warm query can open — a direct A/B of two warm passes would be
  // dominated by this container's run-to-run noise, exactly because the
  // real overhead sits orders of magnitude below it.
  const bool obs_pass = span_overhead_pct <= 3.0 && traced_events > 0;
  std::printf("acceptance (disabled tracing <= 3%% of warm p50, traced "
              "capture non-empty): %.4f%%, %llu spans %s\n",
              span_overhead_pct,
              static_cast<unsigned long long>(traced_events),
              obs_pass ? "PASS" : "FAIL");
  return speedup >= 3.0 && recovery_ratio < 0.10 && coalesce_pass &&
                 churn_pass && obs_pass
             ? 0
             : 1;
}
