// Benchmark of the resident CellStore serving layer: cold single-shot
// Execute() (the paper's model — the whole dataset re-mapped and
// re-shuffled per query) against warm Query() (BuildStore() once, each
// query shuffles only its features and joins against the resident
// per-cell partitions) and warm QueryBatch() (one feature-side job for
// the whole query set).
//
// The workload is data-heavy — many rankable objects, a smaller feature
// set — which is exactly the shape the store targets: the dataset-side
// map/shuffle dominates the cold path and is amortized away by the build.
// Results go to stdout and BENCH_store.json (records/sec and p50 query
// latency per mode, for cross-PR perf tracking).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/cell_store.h"
#include "spq/engine.h"

namespace spq {
namespace {

constexpr uint32_t kGridSize = 50;
constexpr std::size_t kNumQueries = 24;

struct ModeResult {
  std::string mode;
  double p50_ms = 0.0;
  double qps = 0.0;
  double records_per_sec = 0.0;  ///< dataset records served per second
  double setup_seconds = 0.0;    ///< store build (warm modes only)
  /// True when p50_ms is really total/N (one shared batch job has no
  /// per-query latency distribution); emitted under a distinct JSON key
  /// so cross-PR tracking never compares a mean against a true p50.
  bool amortized = false;
};

double Percentile50(std::vector<double> seconds) {
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

std::vector<core::Query> MakeQueries(double radius) {
  std::vector<core::Query> queries;
  for (std::size_t i = 0; i < kNumQueries; ++i) {
    datagen::WorkloadSpec wspec;
    wspec.num_keywords = 5;
    wspec.radius = radius;
    wspec.k = 10;
    wspec.vocab_size = 1'000;
    wspec.seed = 9000 + i;
    queries.push_back(datagen::MakeQuery(wspec, 0));
  }
  return queries;
}

}  // namespace
}  // namespace spq

int main() {
  using namespace spq;
  Logger::SetMinLevel(LogLevel::kWarn);

  std::printf("==== CellStore serving A/B: cold single-shot vs warm "
              "resident path ====\n\n");

  // Data-heavy workload: 200k data objects, 10k features (the store's
  // target regime — the rankable set dwarfs the per-query feature side).
  datagen::UniformSpec dspec;
  dspec.num_objects = 400'000;  // generator splits half data / half features
  dspec.seed = 2017;
  dspec.vocab_size = 1'000;
  dspec.min_keywords = 4;
  dspec.max_keywords = 24;
  auto dataset_or = datagen::MakeUniformDataset(dspec);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  core::Dataset dataset = *std::move(dataset_or);
  dataset.features.resize(10'000);
  const uint64_t total_records = dataset.data.size() + dataset.features.size();
  std::printf("workload: %zu data objects, %zu features, %ux%u grid, "
              "%zu queries\n\n",
              dataset.data.size(), dataset.features.size(), kGridSize,
              kGridSize, kNumQueries);

  const double max_radius =
      datagen::RadiusFromCellFraction(0.5, 1.0, kGridSize);
  const auto queries = MakeQueries(0.8 * max_radius);

  core::EngineOptions options;
  options.grid_size = kGridSize;
  core::SpqEngine engine(dataset, options);

  std::vector<ModeResult> results;
  const core::Algorithm algo = core::Algorithm::kESPQSco;

  // ---- cold: one full map/shuffle job per query ----------------------------
  {
    ModeResult cold;
    cold.mode = "cold_single_shot";
    std::vector<double> lat;
    Stopwatch total;
    for (const core::Query& q : queries) {
      Stopwatch watch;
      auto r = engine.Execute(q, algo);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      lat.push_back(watch.ElapsedSeconds());
    }
    const double secs = total.ElapsedSeconds();
    cold.p50_ms = Percentile50(lat) * 1e3;
    cold.qps = kNumQueries / secs;
    cold.records_per_sec = cold.qps * static_cast<double>(total_records);
    results.push_back(cold);
  }

  // ---- warm: build once, then feature-only jobs ----------------------------
  {
    ModeResult warm;
    warm.mode = "warm_query";
    Stopwatch build_watch;
    if (Status st = engine.BuildStore(max_radius); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    warm.setup_seconds = build_watch.ElapsedSeconds();
    std::vector<double> lat;
    Stopwatch total;
    for (const core::Query& q : queries) {
      Stopwatch watch;
      auto r = engine.Query(q, algo);
      if (!r.ok() || !r->info.warm_path) {
        std::fprintf(stderr, "warm query failed or fell back\n");
        return 1;
      }
      lat.push_back(watch.ElapsedSeconds());
    }
    const double secs = total.ElapsedSeconds();
    warm.p50_ms = Percentile50(lat) * 1e3;
    warm.qps = kNumQueries / secs;
    warm.records_per_sec = warm.qps * static_cast<double>(total_records);
    results.push_back(warm);

    ModeResult batch;
    batch.mode = "warm_batch";
    batch.setup_seconds = warm.setup_seconds;
    Stopwatch batch_watch;
    auto r = engine.QueryBatch(queries, algo);
    if (!r.ok() || !r->warm_path) {
      std::fprintf(stderr, "warm batch failed or fell back\n");
      return 1;
    }
    const double secs_batch = batch_watch.ElapsedSeconds();
    batch.p50_ms = secs_batch / kNumQueries * 1e3;
    batch.amortized = true;
    batch.qps = kNumQueries / secs_batch;
    batch.records_per_sec = batch.qps * static_cast<double>(total_records);
    results.push_back(batch);
  }

  for (const ModeResult& m : results) {
    std::printf("%-18s %s %8.2f ms/query   %8.2f queries/s   "
                "%12.0f records/s%s\n",
                m.mode.c_str(), m.amortized ? "avg" : "p50", m.p50_ms, m.qps,
                m.records_per_sec,
                m.setup_seconds > 0.0
                    ? ("   (one-time build " +
                       std::to_string(m.setup_seconds) + "s)")
                          .c_str()
                    : "");
  }

  // ---- machine-readable output ---------------------------------------------
  std::ofstream json("BENCH_store.json");
  json << "{\n  \"benchmark\": \"store_serving\",\n"
       << "  \"workload\": {\"data_objects\": " << dataset.data.size()
       << ", \"features\": " << dataset.features.size()
       << ", \"grid\": " << kGridSize << ", \"queries\": " << kNumQueries
       << ", \"algorithm\": \"" << core::AlgorithmName(algo) << "\"},\n"
       << "  \"modes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ModeResult& m = results[i];
    json << "    {\"mode\": \"" << m.mode << "\", \""
         << (m.amortized ? "amortized_ms" : "p50_ms") << "\": " << m.p50_ms
         << ", \"queries_per_sec\": " << m.qps
         << ", \"records_per_sec\": " << static_cast<uint64_t>(m.records_per_sec)
         << ", \"setup_seconds\": " << m.setup_seconds << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  const double speedup = results[1].qps / results[0].qps;
  json << "  ],\n  \"warm_vs_cold_speedup\": " << speedup << "\n}\n";
  std::printf("\nWrote BENCH_store.json\n");

  // The tentpole's acceptance bar: warm per-query throughput >= 3x cold.
  std::printf("acceptance (warm >= 3x cold queries/s): %.2fx %s\n", speedup,
              speedup >= 3.0 ? "PASS" : "FAIL");
  return speedup >= 3.0 ? 0 : 1;
}
