// Ablation: the map-side keyword prefilter (Algorithm 1 line 9). The paper
// notes it "can significantly limit the number of feature objects that
// need to be sent to the Reduce phase"; this bench quantifies that by
// running the same queries with the filter on and off.

#include <cstdio>

#include "common/logging.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/engine.h"

int main() {
  using namespace spq;
  Logger::SetMinLevel(LogLevel::kWarn);

  auto dataset = datagen::MakeRealLikeDataset(
      datagen::FlickrLikeSpec(200'000));
  if (!dataset.ok()) return 1;

  core::EngineOptions with;
  with.grid_size = 50;
  core::EngineOptions without = with;
  without.keyword_prefilter = false;
  core::SpqEngine filtered(*dataset, with);
  core::SpqEngine unfiltered(*std::move(dataset), without);

  datagen::WorkloadSpec spec;
  spec.num_keywords = 3;
  spec.radius = datagen::RadiusFromCellFraction(0.10, 1.0, 50);
  spec.k = 10;
  spec.term_zipf = 1.0;
  spec.vocab_size = 34'716;
  spec.seed = 2017;
  const auto query = datagen::MakeQuery(spec, 0);

  std::printf("==== Ablation: map-side keyword prefilter (FL-like, "
              "|q.W|=3) ====\n\n");
  std::printf("%-9s %-10s %14s %16s %14s %10s\n", "algo", "prefilter",
              "shuffled", "shuffle bytes", "examined", "time(s)");
  for (core::Algorithm algo :
       {core::Algorithm::kPSPQ, core::Algorithm::kESPQLen,
        core::Algorithm::kESPQSco}) {
    for (bool on : {true, false}) {
      const core::SpqEngine& engine = on ? filtered : unfiltered;
      auto result = engine.Execute(query, algo);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const auto& info = result->info;
      std::printf("%-9s %-10s %14llu %16llu %14llu %10.4f\n",
                  core::AlgorithmName(algo).c_str(), on ? "on" : "off",
                  static_cast<unsigned long long>(info.features_kept +
                                                  info.feature_duplicates),
                  static_cast<unsigned long long>(info.job.shuffle_bytes),
                  static_cast<unsigned long long>(info.features_examined),
                  info.job.total_seconds);
    }
  }
  std::printf("\nExpected: 'off' shuffles the whole feature set; eSPQsco "
              "still examines few features (zero-score features sort last "
              "and are skipped), while pSPQ pays the full scan.\n");
  return 0;
}
