// Ablation: the map-side keyword prefilter (Algorithm 1 line 9). The paper
// notes it "can significantly limit the number of feature objects that
// need to be sent to the Reduce phase"; this bench quantifies that by
// running the same queries with the filter on and off.
//
// PR 4 adds a third configuration: the prefilter with its signature screen
// ("on+sig", the default) versus the exact-merge-only prefilter ("on").
// Both prune the same features — the 64-bit TermSignature AND merely
// proves most disjoint feature/query pairs disjoint without running the
// sorted merge — so "shuffled"/"examined" are identical and the delta
// shows up in map seconds. On a broad Zipf vocabulary the screen's
// false-pass rate is its honest cost: every passed pair still runs the
// exact merge.

#include <cstdio>

#include "common/logging.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/engine.h"

int main() {
  using namespace spq;
  Logger::SetMinLevel(LogLevel::kWarn);

  auto dataset = datagen::MakeRealLikeDataset(
      datagen::FlickrLikeSpec(200'000));
  if (!dataset.ok()) return 1;

  core::EngineOptions with;  // default: prefilter + signature screen
  with.grid_size = 50;
  core::EngineOptions with_exact = with;
  with_exact.signature_prefilter = false;
  core::EngineOptions without = with;
  without.keyword_prefilter = false;
  core::SpqEngine filtered(*dataset, with);
  core::SpqEngine filtered_exact(*dataset, with_exact);
  core::SpqEngine unfiltered(*std::move(dataset), without);

  datagen::WorkloadSpec spec;
  spec.num_keywords = 3;
  spec.radius = datagen::RadiusFromCellFraction(0.10, 1.0, 50);
  spec.k = 10;
  spec.term_zipf = 1.0;
  spec.vocab_size = 34'716;
  spec.seed = 2017;
  const auto query = datagen::MakeQuery(spec, 0);

  std::printf("==== Ablation: map-side keyword prefilter (FL-like, "
              "|q.W|=3) ====\n\n");
  std::printf("%-9s %-10s %14s %16s %14s %10s %10s\n", "algo", "prefilter",
              "shuffled", "shuffle bytes", "examined", "map(s)", "time(s)");
  for (core::Algorithm algo :
       {core::Algorithm::kPSPQ, core::Algorithm::kESPQLen,
        core::Algorithm::kESPQSco}) {
    struct Config {
      const char* label;
      const core::SpqEngine* engine;
    };
    const Config configs[] = {
        {"on+sig", &filtered},
        {"on", &filtered_exact},
        {"off", &unfiltered},
    };
    uint64_t pruned_with_sig = 0;
    for (const Config& cfg : configs) {
      auto result = cfg.engine->Execute(query, algo);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const auto& info = result->info;
      std::printf("%-9s %-10s %14llu %16llu %14llu %10.4f %10.4f\n",
                  core::AlgorithmName(algo).c_str(), cfg.label,
                  static_cast<unsigned long long>(info.features_kept +
                                                  info.feature_duplicates),
                  static_cast<unsigned long long>(info.job.shuffle_bytes),
                  static_cast<unsigned long long>(info.features_examined),
                  info.job.map_seconds, info.job.total_seconds);
      // The screen may only change HOW features are proven disjoint,
      // never WHICH — guard the ablation against drift.
      if (cfg.engine == &filtered) {
        pruned_with_sig = info.features_pruned;
      } else if (cfg.engine == &filtered_exact &&
                 info.features_pruned != pruned_with_sig) {
        std::fprintf(stderr, "signature screen changed features_pruned!\n");
        return 1;
      }
    }
  }
  std::printf("\nExpected: 'off' shuffles the whole feature set; eSPQsco "
              "still examines few features (zero-score features sort last "
              "and are skipped), while pSPQ pays the full scan. 'on+sig' "
              "and 'on' shuffle identically; the signature screen's gain "
              "is map-side merge work avoided.\n");
  return 0;
}
