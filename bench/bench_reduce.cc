// A/B benchmark of the reduce-side join: the paper's linear |O_i| scan
// per surviving feature (JoinMode::kLinearScan) against the default
// per-group mini-grid index (JoinMode::kGridIndex, reduce_core.h).
//
// The workload is a deliberately *coarse* grid — few, large cells over a
// uniform dataset, with the query radius well below the cell edge — the
// shape where each reduce group holds thousands of data objects but each
// feature's r-disk covers only a small patch of the cell. That is exactly
// the |O_i|·|F_i| blowup the paper's Section 6.3 cost model identifies
// (and sidesteps with small cells); the index makes the large-cell regime
// usable. Results go to stdout and BENCH_reduce.json (machine-readable,
// for cross-PR perf tracking).

// A second section sweeps the warm-serving path's keyword selectivity
// (PR 4): vocabularies sized so a query's keywords occur in ~1% / ~10% /
// ~50% of the grid cells, measured A/B across the kernel_mode and
// signature_prefilter knobs against the PR 3 baseline (scalar kernel, no
// signatures). The sweep rows land in BENCH_reduce.json next to the join
// A/B.

#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/simd.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/engine.h"
#include "text/keyword_set.h"

namespace spq {
namespace {

struct AbRow {
  std::string algo;
  double linear_rps = 0.0;   ///< reduce-phase records/sec, kLinearScan
  double indexed_rps = 0.0;  ///< reduce-phase records/sec, kGridIndex
  uint64_t linear_pairs = 0;
  uint64_t indexed_pairs = 0;
  double linear_reduce_seconds = 0.0;
  double indexed_reduce_seconds = 0.0;
  double speedup() const { return indexed_rps / linear_rps; }
};

uint64_t TotalReduceRecords(const mapreduce::JobStats& stats) {
  uint64_t total = 0;
  for (uint64_t v : stats.reduce_input_records) total += v;
  return total;
}

/// Best-of-3 reduce-phase throughput for one (engine, algorithm) pair.
void Measure(const core::SpqEngine& engine, core::Algorithm algo,
             const core::Query& query, double* rps, double* reduce_seconds,
             uint64_t* pairs) {
  *rps = 0.0;
  *reduce_seconds = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    auto result = engine.Execute(query, algo);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    const double secs = result->info.job.reduce_seconds;
    const double rec_per_sec =
        static_cast<double>(TotalReduceRecords(result->info.job)) / secs;
    if (rec_per_sec > *rps) {
      *rps = rec_per_sec;
      *reduce_seconds = secs;
    }
    *pairs = result->info.pairs_tested;
  }
}

// ---- Warm-serving keyword-selectivity sweep (PR 4) -----------------------

/// One (kernel_mode, signature_prefilter) engine configuration of the
/// sweep's A/B grid. modes[0] is the PR 3 baseline every speedup is
/// measured against.
struct SweepMode {
  std::string label;  ///< "<resolved kernel>/sig-<on|off>"
  simd::KernelMode kernel;
  bool signature;
};

/// Per-(row, mode, algorithm) measurement.
struct SweepCell {
  double rps = 0.0;
  double reduce_seconds = 0.0;
  uint64_t cells_pruned = 0;
  uint64_t signature_checks = 0;
};

// Data-heavy cells (~375 resident objects each) against a light feature
// stream: the regime the resident store serves — a large object inventory
// probed by a modest feature set — and the one where the per-group costs
// the sweep isolates (score resets + candidate distance tests) dominate
// the fixed per-record shuffle drain.
constexpr uint32_t kSweepGrid = 40;         // 40x40 = 1600 cells
constexpr uint32_t kDistrictsPerSide = 10;  // districts of 4x4 cells
constexpr uint64_t kSweepData = 600'000;
constexpr uint64_t kSweepFeatures = 12'000;

/// Terms per vocabulary block. Eight gives the reducers real Jaccard
/// merges (4-8 term features against an 8-term query) while — see below —
/// still costing each block only ONE signature bit.
constexpr uint32_t kBlockTerms = 8;

/// Vocabulary blocks chosen so TermSignature maps each block to ONE known
/// signature bit: scanning TermIds upward from 0, the first kBlockTerms
/// whose Mix64 low-6 bits equal b form bit-b's block. This keeps the
/// per-cell signatures from saturating — the failure mode of a 64-bit
/// Bloom-style screen under a large spatially mixed vocabulary — so the
/// sweep's cell hit rates are governed by the LAYOUT, not by hash
/// collisions.
std::vector<std::array<text::TermId, kBlockTerms>> SieveTermsPerBit() {
  std::vector<std::array<text::TermId, kBlockTerms>> terms(64);
  std::array<uint32_t, 64> have{};
  int remaining = kBlockTerms * 64;
  for (text::TermId t = 0; remaining > 0; ++t) {
    const int b = static_cast<int>(Mix64(t) & 63);
    if (have[b] < kBlockTerms) {
      terms[b][have[b]++] = t;
      --remaining;
    }
  }
  return terms;
}

uint32_t DistrictAxis(double v) {
  const double scaled = v * kDistrictsPerSide;
  const uint32_t i = scaled < 0.0 ? 0 : static_cast<uint32_t>(scaled);
  return i >= kDistrictsPerSide ? kDistrictsPerSide - 1 : i;
}

uint32_t DistrictOf(geo::Point p) {
  return DistrictAxis(p.y) * kDistrictsPerSide + DistrictAxis(p.x);
}

/// Features draw 4-8 keywords from their district's eight-term block;
/// blocks repeat every `100 / distinct_blocks` districts in row-major
/// district order (contiguous bands; with >64 distinct blocks requested,
/// the 64 signature bits wrap and far-apart bands share a block). A query
/// holding one block's terms therefore matches ~1/distinct_blocks of the
/// area — plus the one-cell boundary ring the cell summaries absorb from
/// features within the build radius of a district edge. distinct_blocks
/// must divide 100.
core::Dataset MakeSweepDataset(
    uint32_t distinct_blocks,
    const std::vector<std::array<text::TermId, kBlockTerms>>& bit_terms) {
  const uint32_t band =
      kDistrictsPerSide * kDistrictsPerSide / distinct_blocks;
  core::Dataset dataset;
  dataset.bounds = geo::Rect{0.0, 0.0, 1.0, 1.0};
  Rng rng(777);
  dataset.data.reserve(kSweepData);
  for (uint64_t i = 0; i < kSweepData; ++i) {
    dataset.data.push_back(
        core::DataObject{i, {rng.NextDouble(), rng.NextDouble()}});
  }
  dataset.features.reserve(kSweepFeatures);
  for (uint64_t i = 0; i < kSweepFeatures; ++i) {
    core::FeatureObject f;
    f.id = 1'000'000 + i;
    f.pos = {rng.NextDouble(), rng.NextDouble()};
    const auto& block = bit_terms[(DistrictOf(f.pos) / band) % 64];
    // 4-8 distinct block terms, taken cyclically from a random start:
    // Jaccard against the 8-term query lands anywhere in [1/2, 1].
    const uint32_t len = 4 + rng.NextUint32(kBlockTerms - 3);
    const uint32_t start = rng.NextUint32(kBlockTerms);
    std::vector<text::TermId> terms;
    terms.reserve(len);
    for (uint32_t j = 0; j < len; ++j) {
      terms.push_back(block[(start + j) % kBlockTerms]);
    }
    f.keywords = text::KeywordSet(std::move(terms));
    dataset.features.push_back(std::move(f));
  }
  return dataset;
}

/// Best-of-5 warm reduce-phase throughput. Also captures the prune
/// counters (run-deterministic) and the result list for the cross-mode
/// equality guard. Rep 1 doubles as the store's lazy materialization
/// warm-up, so best-of-5 measures steady-state serving for every mode.
void MeasureWarm(core::SpqEngine& engine, core::Algorithm algo,
                 const core::Query& query, SweepCell* cell,
                 std::vector<core::ResultEntry>* entries) {
  cell->rps = 0.0;
  cell->reduce_seconds = 1e100;
  for (int rep = 0; rep < 5; ++rep) {
    auto result = engine.Query(query, algo);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    if (result->info.cold_fallback) {
      std::fprintf(stderr, "unexpected cold fallback in the warm sweep\n");
      std::exit(1);
    }
    const double secs = result->info.job.reduce_seconds;
    const double rec_per_sec =
        static_cast<double>(TotalReduceRecords(result->info.job)) / secs;
    if (rec_per_sec > cell->rps) {
      cell->rps = rec_per_sec;
      cell->reduce_seconds = secs;
    }
    cell->cells_pruned = result->info.cells_pruned;
    cell->signature_checks = result->info.signature_checks;
    *entries = std::move(result->entries);
  }
}

bool SameEntries(const std::vector<core::ResultEntry>& a,
                 const std::vector<core::ResultEntry>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].score != b[i].score) return false;
  }
  return true;
}

}  // namespace
}  // namespace spq

int main() {
  using namespace spq;
  Logger::SetMinLevel(LogLevel::kWarn);

  std::printf("==== Reduce-side join A/B: linear scan vs. mini-grid index "
              "(coarse 4x4 grid, data-heavy cells) ====\n\n");

  // Data-heavy coarse cells: 400k data objects but only 20k features on a
  // 4x4 grid — ~25k data objects per reduce group, scanned once per
  // surviving feature under kLinearScan. This is the |O_i|·|F_i|
  // large-cell regime (a ranking over a dense object inventory); the
  // generators' half/half object split hides it because there the
  // reducers' time goes to scoring the equally huge feature stream
  // rather than to the join.
  constexpr uint64_t kNumData = 400'000;
  constexpr uint64_t kNumFeatures = 20'000;
  constexpr uint32_t kVocab = 100;
  core::Dataset dataset;
  dataset.bounds = geo::Rect{0.0, 0.0, 1.0, 1.0};
  {
    Rng rng(2017);
    dataset.data.reserve(kNumData);
    for (uint64_t i = 0; i < kNumData; ++i) {
      dataset.data.push_back(
          core::DataObject{i, {rng.NextDouble(), rng.NextDouble()}});
    }
    dataset.features.reserve(kNumFeatures);
    for (uint64_t i = 0; i < kNumFeatures; ++i) {
      core::FeatureObject f;
      f.id = 1'000'000 + i;
      f.pos = {rng.NextDouble(), rng.NextDouble()};
      std::vector<text::TermId> terms;
      const uint32_t n = 2 + rng.NextUint32(10);
      for (uint32_t t = 0; t < n; ++t) {
        terms.push_back(rng.NextUint32(kVocab));
      }
      f.keywords = text::KeywordSet(std::move(terms));
      dataset.features.push_back(std::move(f));
    }
  }

  constexpr uint32_t kGridSize = 4;
  datagen::WorkloadSpec wspec;
  wspec.num_keywords = 8;
  // A small absolute radius (0.6% of the large cell edge — a
  // neighborhood-scale query over a city-scale cell): each feature's
  // r-disk covers only a handful of objects, so the top-k threshold
  // climbs slowly and nearly every surviving feature runs the pair loop
  // — under kLinearScan, a full 25k-object scan each time.
  wspec.radius = datagen::RadiusFromCellFraction(0.006, 1.0, kGridSize);
  // k = 100, the paper's upper range.
  wspec.k = 100;
  wspec.vocab_size = kVocab;
  wspec.seed = 2017;
  const auto query = datagen::MakeQuery(wspec, 0);

  core::EngineOptions linear_options;
  linear_options.grid_size = kGridSize;
  linear_options.num_workers = 4;
  linear_options.join_mode = core::JoinMode::kLinearScan;
  core::SpqEngine linear_engine(dataset, linear_options);
  core::EngineOptions indexed_options = linear_options;
  indexed_options.join_mode = core::JoinMode::kGridIndex;
  core::SpqEngine indexed_engine(dataset, indexed_options);

  std::vector<AbRow> rows;
  for (core::Algorithm algo :
       {core::Algorithm::kPSPQ, core::Algorithm::kESPQLen,
        core::Algorithm::kESPQSco}) {
    AbRow row;
    row.algo = core::AlgorithmName(algo);
    Measure(linear_engine, algo, query, &row.linear_rps,
            &row.linear_reduce_seconds, &row.linear_pairs);
    Measure(indexed_engine, algo, query, &row.indexed_rps,
            &row.indexed_reduce_seconds, &row.indexed_pairs);
    std::printf("%-9s linear %10.0f rec/s (%8.4fs, %10llu pairs)   indexed "
                "%10.0f rec/s (%8.4fs, %10llu pairs)   speedup %.2fx\n",
                row.algo.c_str(), row.linear_rps, row.linear_reduce_seconds,
                static_cast<unsigned long long>(row.linear_pairs),
                row.indexed_rps, row.indexed_reduce_seconds,
                static_cast<unsigned long long>(row.indexed_pairs),
                row.speedup());
    rows.push_back(row);
  }

  // ---- Warm-serving keyword-selectivity sweep (PR 4) -----------------------
  //
  // The map-side keyword prefilter is OFF throughout: with it on, every
  // shuffled feature shares a term with q, so every reduce group survives
  // the cell-summary screen and the sweep would only measure the kernel.
  // Off, the reduce input is identical across modes (the map-side
  // signature screen is gated on the prefilter) and the per-cell summary
  // is the operative prefilter — the same isolate-one-knob philosophy as
  // the linear/indexed A/B above.
  std::printf("\n==== Warm-serving selectivity sweep: cell signatures + "
              "distance kernel (40x40 grid, district-local vocab) ====\n\n");

  const core::Algorithm kAlgos[] = {core::Algorithm::kPSPQ,
                                    core::Algorithm::kESPQLen,
                                    core::Algorithm::kESPQSco};
  const auto bit_terms = SieveTermsPerBit();
  const SweepMode modes[] = {
      {"scalar/sig-off", simd::KernelMode::kScalar, false},  // PR 3 baseline
      {"scalar/sig-on", simd::KernelMode::kScalar, true},
      {std::string(simd::KernelName(simd::KernelMode::kAuto)) + "/sig-off",
       simd::KernelMode::kAuto, false},
      {std::string(simd::KernelName(simd::KernelMode::kAuto)) + "/sig-on",
       simd::KernelMode::kAuto, true},
  };
  constexpr std::size_t kNumModes = 4;

  struct SweepRowOut {
    const char* target;
    uint32_t distinct_blocks;
    double hit_rate = 1.0;
    uint64_t cells_pruned = 0;
    uint64_t signature_checks = 0;
    SweepCell cells[kNumModes][3];  // [mode][algo]
  };
  // distinct_blocks controls the vocabulary size (2 terms per block) and
  // with it the fraction of districts — hence cells — a one-block query
  // touches: 100 blocks -> 1 district (~1% of cells before the boundary
  // ring), 10 -> one district row (~10%), 2 -> half the area (~50%).
  SweepRowOut sweep[] = {
      {"~1%", 100}, {"~10%", 10}, {"~50%", 2},
  };
  const double sweep_radius =
      datagen::RadiusFromCellFraction(0.5, 1.0, kSweepGrid);

  for (SweepRowOut& row : sweep) {
    const core::Dataset sweep_dataset =
        MakeSweepDataset(row.distinct_blocks, bit_terms);
    // The query carries district 55's full block: an interior district,
    // so the ~1% row's footprint is one district plus its boundary ring.
    const uint32_t band =
        kDistrictsPerSide * kDistrictsPerSide / row.distinct_blocks;
    const auto& qblock = bit_terms[(55 / band) % 64];
    core::Query query;
    query.k = 32;
    query.radius = sweep_radius;
    query.keywords = text::KeywordSet(
        std::vector<text::TermId>(qblock.begin(), qblock.end()));

    std::vector<core::ResultEntry> baseline_entries[3];
    for (std::size_t m = 0; m < kNumModes; ++m) {
      core::EngineOptions opt;
      opt.grid_size = kSweepGrid;
      // One worker and R < cells (the paper's consolidated-reducer
      // regime): the sweep times per-group serving work, not the task
      // scheduler, and single-worker runs keep best-of-N stable.
      opt.num_workers = 1;
      opt.num_reduce_tasks = 64;
      opt.keyword_prefilter = false;  // see the section comment
      opt.kernel_mode = modes[m].kernel;
      opt.signature_prefilter = modes[m].signature;
      core::SpqEngine engine(sweep_dataset, opt);
      auto built = engine.BuildStore(sweep_radius);
      if (!built.ok()) {
        std::fprintf(stderr, "%s\n", built.ToString().c_str());
        return 1;
      }
      for (std::size_t a = 0; a < 3; ++a) {
        std::vector<core::ResultEntry> entries;
        MeasureWarm(engine, kAlgos[a], query, &row.cells[m][a], &entries);
        if (m == 0) {
          baseline_entries[a] = std::move(entries);
        } else if (!SameEntries(baseline_entries[a], entries)) {
          std::fprintf(stderr, "mode %s changed %s's results!\n",
                       modes[m].label.c_str(),
                       core::AlgorithmName(kAlgos[a]).c_str());
          return 1;
        }
      }
      if (modes[m].signature) {
        row.cells_pruned = row.cells[m][0].cells_pruned;
        row.signature_checks = row.cells[m][0].signature_checks;
        if (row.signature_checks > 0) {
          row.hit_rate = 1.0 - static_cast<double>(row.cells_pruned) /
                                   static_cast<double>(row.signature_checks);
        }
      }
    }

    std::printf("row %-4s (%3u blocks, %3u terms): cell hit rate %.1f%% "
                "(%llu of %llu groups pruned)\n",
                row.target, row.distinct_blocks,
                kBlockTerms * std::min(row.distinct_blocks, 64u),
                100.0 * row.hit_rate,
                static_cast<unsigned long long>(row.cells_pruned),
                static_cast<unsigned long long>(row.signature_checks));
    for (std::size_t a = 0; a < 3; ++a) {
      std::printf("  %-9s", core::AlgorithmName(kAlgos[a]).c_str());
      for (std::size_t m = 0; m < kNumModes; ++m) {
        std::printf("  %s %9.0f rec/s", modes[m].label.c_str(),
                    row.cells[m][a].rps);
      }
      std::printf("  speedup %.2fx\n",
                  row.cells[kNumModes - 1][a].rps / row.cells[0][a].rps);
    }
  }

  // ---- Machine-readable output for cross-PR perf tracking ------------------
  std::ofstream json("BENCH_reduce.json");
  json << "{\n  \"benchmark\": \"bench_reduce\",\n"
       << "  \"join_ab\": {\n"
       << "    \"workload\": {\"data_objects\": " << kNumData
       << ", \"feature_objects\": " << kNumFeatures
       << ", \"grid_size\": " << kGridSize << ", \"k\": " << wspec.k
       << ", \"radius_cell_fraction\": 0.006},\n    \"algorithms\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AbRow& r = rows[i];
    json << "      {\"algorithm\": \"" << r.algo
         << "\", \"linear_reduce_records_per_sec\": "
         << static_cast<uint64_t>(r.linear_rps)
         << ", \"indexed_reduce_records_per_sec\": "
         << static_cast<uint64_t>(r.indexed_rps)
         << ", \"linear_pairs_tested\": " << r.linear_pairs
         << ", \"indexed_pairs_tested\": " << r.indexed_pairs
         << ", \"speedup\": " << r.speedup() << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "    ]\n  },\n"
       << "  \"selectivity_sweep\": {\n"
       << "    \"workload\": {\"data_objects\": " << kSweepData
       << ", \"feature_objects\": " << kSweepFeatures
       << ", \"grid_size\": " << kSweepGrid
       << ", \"k\": 32, \"radius_cell_fraction\": 0.5"
       << ", \"keyword_prefilter\": false},\n"
       << "    \"auto_kernel\": \""
       << simd::KernelName(simd::KernelMode::kAuto) << "\",\n"
       << "    \"rows\": [\n";
  for (std::size_t s = 0; s < 3; ++s) {
    const SweepRowOut& row = sweep[s];
    json << "      {\"target_cell_hit_rate\": \"" << row.target
         << "\", \"vocabulary_terms\": "
         << kBlockTerms * std::min(row.distinct_blocks, 64u)
         << ", \"measured_cell_hit_rate\": " << row.hit_rate
         << ", \"cells_pruned\": " << row.cells_pruned
         << ", \"signature_checks\": " << row.signature_checks
         << ",\n       \"modes\": [\n";
    for (std::size_t m = 0; m < kNumModes; ++m) {
      json << "        {\"mode\": \"" << modes[m].label << "\", \"kernel\": \""
           << simd::KernelName(modes[m].kernel) << "\", \"signature\": "
           << (modes[m].signature ? "true" : "false")
           << ", \"reduce_records_per_sec\": {";
      for (std::size_t a = 0; a < 3; ++a) {
        json << "\"" << core::AlgorithmName(kAlgos[a]) << "\": "
             << static_cast<uint64_t>(row.cells[m][a].rps)
             << (a + 1 < 3 ? ", " : "");
      }
      json << "}}" << (m + 1 < kNumModes ? "," : "") << "\n";
    }
    json << "       ],\n       \"speedup_vs_baseline\": {";
    for (std::size_t a = 0; a < 3; ++a) {
      json << "\"" << core::AlgorithmName(kAlgos[a]) << "\": "
           << row.cells[kNumModes - 1][a].rps / row.cells[0][a].rps
           << (a + 1 < 3 ? ", " : "");
    }
    json << "}}" << (s + 1 < 3 ? "," : "") << "\n";
  }
  json << "    ]\n  }\n}\n";
  std::printf("\nWrote BENCH_reduce.json\n");

  // Acceptance gates. Join A/B: >= 1.3x reduce-phase throughput on the
  // scan-bound algorithms (eSPQsco's reducers stop after k reports
  // regardless of the join strategy — reported, not gated). Sweep: on the
  // keyword-selective row, signatures + kernel >= 1.5x the PR 3 baseline
  // on the same two algorithms (eSPQsco's descending-score first-hit walk
  // already skips zero-score groups after one sort — reported, not gated).
  bool ok = true;
  for (const AbRow& r : rows) {
    if (r.algo != "eSPQsco") ok = ok && r.speedup() >= 1.3;
  }
  std::printf("acceptance (>=1.3x reduce records/sec on pSPQ and eSPQlen): "
              "%s\n",
              ok ? "PASS" : "FAIL");
  bool sweep_ok = true;
  for (std::size_t a = 0; a < 2; ++a) {
    sweep_ok = sweep_ok &&
               sweep[0].cells[kNumModes - 1][a].rps >=
                   1.5 * sweep[0].cells[0][a].rps;
  }
  std::printf("acceptance (>=1.5x warm reduce records/sec, selective row, "
              "sig+kernel vs baseline, pSPQ and eSPQlen): %s\n",
              sweep_ok ? "PASS" : "FAIL");
  ok = ok && sweep_ok;
  return ok ? 0 : 1;
}
