// A/B benchmark of the reduce-side join: the paper's linear |O_i| scan
// per surviving feature (JoinMode::kLinearScan) against the default
// per-group mini-grid index (JoinMode::kGridIndex, reduce_core.h).
//
// The workload is a deliberately *coarse* grid — few, large cells over a
// uniform dataset, with the query radius well below the cell edge — the
// shape where each reduce group holds thousands of data objects but each
// feature's r-disk covers only a small patch of the cell. That is exactly
// the |O_i|·|F_i| blowup the paper's Section 6.3 cost model identifies
// (and sidesteps with small cells); the index makes the large-cell regime
// usable. Results go to stdout and BENCH_reduce.json (machine-readable,
// for cross-PR perf tracking).

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/engine.h"
#include "text/keyword_set.h"

namespace spq {
namespace {

struct AbRow {
  std::string algo;
  double linear_rps = 0.0;   ///< reduce-phase records/sec, kLinearScan
  double indexed_rps = 0.0;  ///< reduce-phase records/sec, kGridIndex
  uint64_t linear_pairs = 0;
  uint64_t indexed_pairs = 0;
  double linear_reduce_seconds = 0.0;
  double indexed_reduce_seconds = 0.0;
  double speedup() const { return indexed_rps / linear_rps; }
};

uint64_t TotalReduceRecords(const mapreduce::JobStats& stats) {
  uint64_t total = 0;
  for (uint64_t v : stats.reduce_input_records) total += v;
  return total;
}

/// Best-of-3 reduce-phase throughput for one (engine, algorithm) pair.
void Measure(const core::SpqEngine& engine, core::Algorithm algo,
             const core::Query& query, double* rps, double* reduce_seconds,
             uint64_t* pairs) {
  *rps = 0.0;
  *reduce_seconds = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    auto result = engine.Execute(query, algo);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    const double secs = result->info.job.reduce_seconds;
    const double rec_per_sec =
        static_cast<double>(TotalReduceRecords(result->info.job)) / secs;
    if (rec_per_sec > *rps) {
      *rps = rec_per_sec;
      *reduce_seconds = secs;
    }
    *pairs = result->info.pairs_tested;
  }
}

}  // namespace
}  // namespace spq

int main() {
  using namespace spq;
  Logger::SetMinLevel(LogLevel::kWarn);

  std::printf("==== Reduce-side join A/B: linear scan vs. mini-grid index "
              "(coarse 4x4 grid, data-heavy cells) ====\n\n");

  // Data-heavy coarse cells: 400k data objects but only 20k features on a
  // 4x4 grid — ~25k data objects per reduce group, scanned once per
  // surviving feature under kLinearScan. This is the |O_i|·|F_i|
  // large-cell regime (a ranking over a dense object inventory); the
  // generators' half/half object split hides it because there the
  // reducers' time goes to scoring the equally huge feature stream
  // rather than to the join.
  constexpr uint64_t kNumData = 400'000;
  constexpr uint64_t kNumFeatures = 20'000;
  constexpr uint32_t kVocab = 100;
  core::Dataset dataset;
  dataset.bounds = geo::Rect{0.0, 0.0, 1.0, 1.0};
  {
    Rng rng(2017);
    dataset.data.reserve(kNumData);
    for (uint64_t i = 0; i < kNumData; ++i) {
      dataset.data.push_back(
          core::DataObject{i, {rng.NextDouble(), rng.NextDouble()}});
    }
    dataset.features.reserve(kNumFeatures);
    for (uint64_t i = 0; i < kNumFeatures; ++i) {
      core::FeatureObject f;
      f.id = 1'000'000 + i;
      f.pos = {rng.NextDouble(), rng.NextDouble()};
      std::vector<text::TermId> terms;
      const uint32_t n = 2 + rng.NextUint32(10);
      for (uint32_t t = 0; t < n; ++t) {
        terms.push_back(rng.NextUint32(kVocab));
      }
      f.keywords = text::KeywordSet(std::move(terms));
      dataset.features.push_back(std::move(f));
    }
  }

  constexpr uint32_t kGridSize = 4;
  datagen::WorkloadSpec wspec;
  wspec.num_keywords = 8;
  // A small absolute radius (0.6% of the large cell edge — a
  // neighborhood-scale query over a city-scale cell): each feature's
  // r-disk covers only a handful of objects, so the top-k threshold
  // climbs slowly and nearly every surviving feature runs the pair loop
  // — under kLinearScan, a full 25k-object scan each time.
  wspec.radius = datagen::RadiusFromCellFraction(0.006, 1.0, kGridSize);
  // k = 100, the paper's upper range.
  wspec.k = 100;
  wspec.vocab_size = kVocab;
  wspec.seed = 2017;
  const auto query = datagen::MakeQuery(wspec, 0);

  core::EngineOptions linear_options;
  linear_options.grid_size = kGridSize;
  linear_options.num_workers = 4;
  linear_options.join_mode = core::JoinMode::kLinearScan;
  core::SpqEngine linear_engine(dataset, linear_options);
  core::EngineOptions indexed_options = linear_options;
  indexed_options.join_mode = core::JoinMode::kGridIndex;
  core::SpqEngine indexed_engine(dataset, indexed_options);

  std::vector<AbRow> rows;
  for (core::Algorithm algo :
       {core::Algorithm::kPSPQ, core::Algorithm::kESPQLen,
        core::Algorithm::kESPQSco}) {
    AbRow row;
    row.algo = core::AlgorithmName(algo);
    Measure(linear_engine, algo, query, &row.linear_rps,
            &row.linear_reduce_seconds, &row.linear_pairs);
    Measure(indexed_engine, algo, query, &row.indexed_rps,
            &row.indexed_reduce_seconds, &row.indexed_pairs);
    std::printf("%-9s linear %10.0f rec/s (%8.4fs, %10llu pairs)   indexed "
                "%10.0f rec/s (%8.4fs, %10llu pairs)   speedup %.2fx\n",
                row.algo.c_str(), row.linear_rps, row.linear_reduce_seconds,
                static_cast<unsigned long long>(row.linear_pairs),
                row.indexed_rps, row.indexed_reduce_seconds,
                static_cast<unsigned long long>(row.indexed_pairs),
                row.speedup());
    rows.push_back(row);
  }

  // ---- Machine-readable output for cross-PR perf tracking ------------------
  std::ofstream json("BENCH_reduce.json");
  json << "{\n  \"benchmark\": \"reduce_join_ab\",\n"
       << "  \"workload\": {\"data_objects\": " << kNumData
       << ", \"feature_objects\": " << kNumFeatures
       << ", \"grid_size\": " << kGridSize << ", \"k\": " << wspec.k
       << ", \"radius_cell_fraction\": 0.006},\n  \"algorithms\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AbRow& r = rows[i];
    json << "    {\"algorithm\": \"" << r.algo
         << "\", \"linear_reduce_records_per_sec\": "
         << static_cast<uint64_t>(r.linear_rps)
         << ", \"indexed_reduce_records_per_sec\": "
         << static_cast<uint64_t>(r.indexed_rps)
         << ", \"linear_pairs_tested\": " << r.linear_pairs
         << ", \"indexed_pairs_tested\": " << r.indexed_pairs
         << ", \"speedup\": " << r.speedup() << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nWrote BENCH_reduce.json\n");

  // Acceptance: >= 1.3x reduce-phase throughput on the scan-bound
  // algorithms. eSPQsco's reducers stop after k reports regardless of the
  // join strategy, so it is reported above but not gated.
  bool ok = true;
  for (const AbRow& r : rows) {
    if (r.algo != "eSPQsco") ok = ok && r.speedup() >= 1.3;
  }
  std::printf("acceptance (>=1.3x reduce records/sec on pSPQ and eSPQlen): "
              "%s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
