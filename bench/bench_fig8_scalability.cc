// Regenerates Figure 8: job time vs. dataset size on uniform data, all
// three algorithms. Paper sweeps 64M -> 512M entries; this harness sweeps
// 64k -> 512k at scale 1 (SPQ_BENCH_SCALE multiplies every point).
//
// Expected shape (paper): pSPQ grows linearly with dataset size; eSPQlen /
// eSPQsco grow much more slowly, and their advantage widens as data grows.

#include <cstdio>
#include <vector>

#include "bench/figure_common.h"
#include "common/logging.h"
#include "datagen/generator.h"
#include "datagen/workload.h"

int main() {
  using namespace spq;
  Logger::SetMinLevel(LogLevel::kWarn);

  const std::vector<uint64_t> sizes = {
      bench::ScaledObjects(128'000), bench::ScaledObjects(256'000),
      bench::ScaledObjects(512'000), bench::ScaledObjects(1'024'000)};
  const uint32_t grid = 10;
  uint32_t queries_per_point = bench::QueriesPerPointOverride();
  if (queries_per_point == 0) queries_per_point = 2;

  std::printf("==== Figure 8: scalability with dataset size (UN) ====\n");
  std::printf("grid=%u, |q.W|=3, r=10%% of cell, k=10, %u queries/point\n\n",
              grid, queries_per_point);
  std::printf("%-12s %12s %12s %12s\n", "objects", "pSPQ", "eSPQlen",
              "eSPQsco");

  datagen::WorkloadSpec workload;
  workload.num_keywords = 3;
  workload.radius = datagen::RadiusFromCellFraction(0.10, 1.0, grid);
  workload.k = 10;
  workload.vocab_size = 1'000;
  workload.seed = 2017;
  const auto queries = datagen::MakeQueries(workload, queries_per_point);

  for (uint64_t n : sizes) {
    auto dataset = datagen::MakeUniformDataset({.num_objects = n, .seed = 42});
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    core::EngineOptions options;
    options.grid_size = grid;
    core::SpqEngine engine(*std::move(dataset), options);
    std::printf("%-12llu", static_cast<unsigned long long>(n));
    for (core::Algorithm algo :
         {core::Algorithm::kPSPQ, core::Algorithm::kESPQLen,
          core::Algorithm::kESPQSco}) {
      double total = 0.0;
      for (const auto& query : queries) {
        auto result = engine.Execute(query, algo);
        if (!result.ok()) {
          std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
          return 1;
        }
        total += result->info.job.total_seconds;
      }
      std::printf(" %12.4f", total / queries.size());
    }
    std::printf("\n");
  }
  return 0;
}
