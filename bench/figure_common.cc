#include "bench/figure_common.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "common/logging.h"
#include "datagen/workload.h"

namespace spq::bench {

namespace {

struct PointResult {
  double seconds = 0.0;
  double examined_ratio = 0.0;  // features examined / shuffled
};

/// Mean job time over `queries` for one (algorithm, parameter) point.
PointResult RunPoint(const core::SpqEngine& engine,
                     const std::vector<core::Query>& queries,
                     core::Algorithm algo, uint32_t grid_size) {
  PointResult out;
  double ratio_sum = 0.0;
  for (const auto& query : queries) {
    auto result = engine.Execute(query, algo, grid_size);
    if (!result.ok()) {
      std::fprintf(stderr, "bench query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    out.seconds += result->info.job.total_seconds;
    ratio_sum += result->info.FeatureExaminationRatio();
  }
  out.seconds /= queries.size();
  out.examined_ratio = ratio_sum / queries.size();
  return out;
}

std::vector<core::Query> MakeWorkload(const FigureConfig& config,
                                      uint32_t num_keywords,
                                      double radius_pct, uint32_t grid,
                                      uint32_t k, uint32_t count) {
  datagen::WorkloadSpec spec;
  spec.num_keywords = num_keywords;
  spec.radius = datagen::RadiusFromCellFraction(
      radius_pct / 100.0, config.dataset.bounds.width(), grid);
  spec.k = k;
  spec.term_zipf = config.term_zipf;
  spec.vocab_size = config.vocab_size;
  spec.seed = config.workload_seed;
  return datagen::MakeQueries(spec, count);
}

void PrintSeriesHeader(const FigureConfig& config, const char* x_name) {
  std::printf("%-10s", x_name);
  for (auto algo : config.algorithms) {
    std::printf(" %12s", core::AlgorithmName(algo).c_str());
  }
  std::printf("   | examined%%:");
  for (auto algo : config.algorithms) {
    std::printf(" %8s", core::AlgorithmName(algo).c_str());
  }
  std::printf("\n");
}

/// Optional machine-readable output: when SPQ_BENCH_CSV names a directory,
/// every sweep row is appended to <dir>/<figure-slug>.csv as
///   sweep,x,algorithm,seconds,examined_ratio
class CsvSink {
 public:
  CsvSink(const FigureConfig& config) : config_(&config) {
    const char* dir = std::getenv("SPQ_BENCH_CSV");
    if (dir == nullptr || *dir == '\0') return;
    std::string slug;
    for (char c : config.title) {
      slug += std::isalnum(static_cast<unsigned char>(c))
                  ? static_cast<char>(std::tolower(c))
                  : '_';
    }
    out_.open(std::string(dir) + "/" + slug + ".csv");
    if (out_) out_ << "sweep,x,algorithm,seconds,examined_ratio\n";
  }

  void Row(const char* sweep, const std::string& x,
           const std::vector<PointResult>& points) {
    if (!out_) return;
    for (std::size_t i = 0; i < points.size(); ++i) {
      out_ << sweep << ',' << x << ','
           << core::AlgorithmName(config_->algorithms[i]) << ','
           << points[i].seconds << ',' << points[i].examined_ratio << '\n';
    }
  }

 private:
  const FigureConfig* config_;
  std::ofstream out_;
};

template <typename X>
std::string PrintRow(const FigureConfig& /*config*/, X x, const char* x_fmt,
                     const std::vector<PointResult>& points) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), x_fmt, x);
  std::printf("%-10s", buf);
  for (const auto& p : points) std::printf(" %12.4f", p.seconds);
  std::printf("   |           ");
  for (const auto& p : points) {
    std::printf(" %7.2f%%", 100.0 * p.examined_ratio);
  }
  std::printf("\n");
  return buf;
}

}  // namespace

uint64_t ScaledObjects(uint64_t base) {
  double scale = 1.0;
  if (const char* env = std::getenv("SPQ_BENCH_SCALE")) {
    scale = std::atof(env);
    if (scale <= 0.0) scale = 1.0;
  }
  uint64_t n = static_cast<uint64_t>(static_cast<double>(base) * scale);
  return n < 1000 ? 1000 : n;
}

uint32_t QueriesPerPointOverride() {
  if (const char* env = std::getenv("SPQ_BENCH_QUERIES")) {
    int v = std::atoi(env);
    if (v > 0) return static_cast<uint32_t>(v);
  }
  return 0;
}

void RunFigure(const FigureConfig& config) {
  Logger::SetMinLevel(LogLevel::kWarn);
  FigureConfig cfg = config;  // local copy for overrides
  if (uint32_t q = QueriesPerPointOverride(); q > 0) {
    cfg.queries_per_point = q;
  }

  std::printf("==== %s ====\n", cfg.title.c_str());
  std::printf("dataset: |O|=%zu |F|=%zu, %u queries per point, "
              "job time in seconds\n\n",
              cfg.dataset.data.size(), cfg.dataset.features.size(),
              cfg.queries_per_point);

  core::EngineOptions options;
  options.grid_size = cfg.default_grid;
  core::SpqEngine engine(cfg.dataset, options);
  CsvSink csv(cfg);

  // (a) varying grid size
  std::printf("--- (a) varying grid size (|q.W|=%u, r=%.0f%%, k=%u) ---\n",
              cfg.default_keywords, cfg.default_radius_pct, cfg.default_k);
  PrintSeriesHeader(cfg, "grid");
  for (uint32_t grid : cfg.grid_sizes) {
    auto queries = MakeWorkload(cfg, cfg.default_keywords,
                                cfg.default_radius_pct, grid, cfg.default_k,
                                cfg.queries_per_point);
    std::vector<PointResult> points;
    for (auto algo : cfg.algorithms) {
      points.push_back(RunPoint(engine, queries, algo, grid));
    }
    csv.Row("grid", PrintRow(cfg, grid, "%u", points), points);
  }

  // (b) varying number of query keywords
  std::printf("\n--- (b) varying query keywords (grid=%u, r=%.0f%%, k=%u) "
              "---\n",
              cfg.default_grid, cfg.default_radius_pct, cfg.default_k);
  PrintSeriesHeader(cfg, "keywords");
  for (uint32_t kw : cfg.keyword_counts) {
    auto queries =
        MakeWorkload(cfg, kw, cfg.default_radius_pct, cfg.default_grid,
                     cfg.default_k, cfg.queries_per_point);
    std::vector<PointResult> points;
    for (auto algo : cfg.algorithms) {
      points.push_back(RunPoint(engine, queries, algo, cfg.default_grid));
    }
    csv.Row("keywords", PrintRow(cfg, kw, "%u", points), points);
  }

  // (c) varying query radius
  std::printf("\n--- (c) varying radius, %% of cell edge (grid=%u, "
              "|q.W|=%u, k=%u) ---\n",
              cfg.default_grid, cfg.default_keywords, cfg.default_k);
  PrintSeriesHeader(cfg, "radius%");
  for (double pct : cfg.radius_pcts) {
    auto queries = MakeWorkload(cfg, cfg.default_keywords, pct,
                                cfg.default_grid, cfg.default_k,
                                cfg.queries_per_point);
    std::vector<PointResult> points;
    for (auto algo : cfg.algorithms) {
      points.push_back(RunPoint(engine, queries, algo, cfg.default_grid));
    }
    csv.Row("radius_pct", PrintRow(cfg, pct, "%.0f", points), points);
  }

  // (d) varying k
  std::printf("\n--- (d) varying top-k (grid=%u, |q.W|=%u, r=%.0f%%) ---\n",
              cfg.default_grid, cfg.default_keywords,
              cfg.default_radius_pct);
  PrintSeriesHeader(cfg, "k");
  for (uint32_t k : cfg.ks) {
    auto queries =
        MakeWorkload(cfg, cfg.default_keywords, cfg.default_radius_pct,
                     cfg.default_grid, k, cfg.queries_per_point);
    std::vector<PointResult> points;
    for (auto algo : cfg.algorithms) {
      points.push_back(RunPoint(engine, queries, algo, cfg.default_grid));
    }
    csv.Row("k", PrintRow(cfg, k, "%u", points), points);
  }
  std::printf("\n");
}

}  // namespace spq::bench
