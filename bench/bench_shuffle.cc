// A/B benchmark of the shuffle pipeline: the retained legacy path
// (comparison stable_sort + Codec encode/decode + std::function merge)
// against the sort-free cell-bucketed path (per-cell bucketing, uint64
// order-key sort, flat-arena segments, zero-copy views).
//
// Part 1 is a shuffle-dominated pass-through job (mapper emits pre-keyed
// records, reducer drains its groups) on a uniform and a clustered cell
// distribution — it isolates the map-output sort, segment layout and k-way
// merge, the code this PR rewrote. Part 2 runs the full engine per
// algorithm for an end-to-end view. Results go to stdout and to
// BENCH_shuffle.json (machine-readable, for cross-PR perf tracking).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "mapreduce/runtime.h"
#include "spq/engine.h"
#include "spq/shuffle_types.h"

namespace spq {
namespace {

using core::CellKey;
using core::ShuffleObject;
using mapreduce::ShuffleMode;

struct PreKeyed {
  CellKey key;
  ShuffleObject obj;
};

/// Pass-through mapper: the emission keys are precomputed, so the job's
/// cost is the shuffle itself.
class PassThroughMapper final
    : public mapreduce::Mapper<PreKeyed, CellKey, ShuffleObject> {
 public:
  void Map(const PreKeyed& in,
           mapreduce::MapContext<CellKey, ShuffleObject>& ctx) override {
    ctx.Emit(in.key, in.obj);
  }
};

/// Drains every group, touching each record's keyword span so the merge
/// and decode cannot be optimized away.
class DrainReducer final
    : public mapreduce::Reducer<CellKey, ShuffleObject, uint64_t> {
 public:
  void Reduce(const CellKey&,
              mapreduce::GroupValues<CellKey, ShuffleObject>& values,
              mapreduce::ReduceContext<uint64_t>& ctx) override {
    uint64_t checksum = 0;
    while (values.Next()) {
      const ShuffleObject& x = values.value();
      checksum += x.id;
      if (!x.keywords.empty()) checksum += x.keywords.back();
    }
    ctx.Emit(checksum);
  }
};

mapreduce::JobSpec<PreKeyed, CellKey, ShuffleObject, uint64_t>
PassThroughSpec() {
  mapreduce::JobSpec<PreKeyed, CellKey, ShuffleObject, uint64_t> spec;
  spec.mapper_factory = [] { return std::make_unique<PassThroughMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<DrainReducer>(); };
  spec.partitioner = core::CellPartitioner;
  spec.sort_less = core::CellKeySortLess;
  spec.group_equal = core::CellKeyGroupEqual;
  spec.flat_reducer_factory = [] {
    return [](const CellKey&,
              mapreduce::FlatGroupCursor<CellKey, ShuffleObject>& values,
              mapreduce::ReduceContext<uint64_t>& ctx) {
      uint64_t checksum = 0;
      while (values.Next()) {
        const core::ShuffleObjectView x = values.value();
        checksum += x.id;
        if (x.num_keywords > 0) checksum += x.keywords[x.num_keywords - 1];
      }
      ctx.Emit(checksum);
    };
  };
  return spec;
}

/// `clustered` draws cells from a few hot spots (the paper's CL dataset
/// shape: some reduce partitions get most of the traffic); uniform spreads
/// them evenly over the 50x50 grid.
std::vector<PreKeyed> MakeRecords(std::size_t n, bool clustered,
                                  uint64_t seed) {
  Rng rng(seed);
  const uint32_t num_cells = 50 * 50;
  std::vector<uint32_t> hot_cells;
  for (int i = 0; i < 8; ++i) hot_cells.push_back(rng.NextUint32(num_cells));
  std::vector<PreKeyed> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PreKeyed r;
    if (clustered && rng.NextUint32(100) < 80) {
      r.key.cell = hot_cells[rng.NextUint32(8)];
    } else {
      r.key.cell = rng.NextUint32(num_cells);
    }
    const bool is_feature = rng.NextUint32(100) < 60;
    r.obj.kind = is_feature ? ShuffleObject::kFeature : ShuffleObject::kData;
    r.obj.id = i;
    r.obj.pos = {rng.NextDouble(), rng.NextDouble()};
    if (is_feature) {
      r.key.order = -rng.NextDouble();  // eSPQsco-like secondary key
      std::vector<text::TermId> kw(8);
      for (auto& t : kw) t = rng.NextUint32(10'000);
      std::sort(kw.begin(), kw.end());
      kw.erase(std::unique(kw.begin(), kw.end()), kw.end());
      r.obj.keywords = std::move(kw);
    } else {
      r.key.order = core::kDataOrderScore;
    }
    records.push_back(std::move(r));
  }
  return records;
}

struct AbResult {
  std::string name;
  double legacy_rps = 0.0;
  double bucketed_rps = 0.0;
  uint64_t records = 0;
  double speedup() const { return bucketed_rps / legacy_rps; }
};

double MeasureRps(const std::vector<PreKeyed>& input, ShuffleMode mode) {
  mapreduce::JobConfig config;
  config.num_map_tasks = 8;
  config.num_reduce_tasks = 32;
  config.num_workers = 4;
  config.job_name = "bench_shuffle";
  config.shuffle_mode = mode;
  const auto spec = PassThroughSpec();
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    auto result = mapreduce::RunJob(spec, config, input);
    const double secs = watch.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    best = std::max(best,
                    static_cast<double>(result->stats.map_output_records) /
                        secs);
  }
  return best;
}

struct EndToEndResult {
  std::string algo;
  double legacy_seconds = 0.0;
  double bucketed_seconds = 0.0;
};

}  // namespace
}  // namespace spq

int main() {
  using namespace spq;
  Logger::SetMinLevel(LogLevel::kWarn);

  std::printf("==== Shuffle A/B: legacy comparison sort vs. cell-bucketed "
              "flat arena ====\n\n");

  // ---- Part 1: shuffle-dominated pass-through job --------------------------
  constexpr std::size_t kNumRecords = 400'000;
  std::vector<AbResult> ab_results;
  for (const bool clustered : {false, true}) {
    AbResult ab;
    ab.name = clustered ? "clustered" : "uniform";
    ab.records = kNumRecords;
    const auto input = MakeRecords(kNumRecords, clustered, 2017);
    ab.legacy_rps = MeasureRps(input, ShuffleMode::kLegacySort);
    ab.bucketed_rps = MeasureRps(input, ShuffleMode::kCellBucketed);
    std::printf("%-10s %12llu recs   legacy %10.0f rec/s   bucketed %10.0f "
                "rec/s   speedup %.2fx\n",
                ab.name.c_str(),
                static_cast<unsigned long long>(ab.records), ab.legacy_rps,
                ab.bucketed_rps, ab.speedup());
    ab_results.push_back(ab);
  }

  // ---- Part 2: end-to-end engine runs per algorithm ------------------------
  std::printf("\n==== End-to-end Execute() per algorithm (Flickr-like, "
              "200k objects) ====\n\n");
  auto dataset = datagen::MakeRealLikeDataset(datagen::FlickrLikeSpec(200'000));
  if (!dataset.ok()) return 1;

  datagen::WorkloadSpec wspec;
  wspec.num_keywords = 5;
  wspec.radius = datagen::RadiusFromCellFraction(0.10, 1.0, 50);
  wspec.k = 10;
  wspec.term_zipf = 1.0;
  wspec.vocab_size = 34'716;
  wspec.seed = 2017;
  const auto query = datagen::MakeQuery(wspec, 0);

  // One engine per mode (the dataset copy + flatten is expensive and not
  // part of the measurement); all algorithms share it.
  core::EngineOptions legacy_options;
  legacy_options.grid_size = 50;
  legacy_options.shuffle_mode = ShuffleMode::kLegacySort;
  core::SpqEngine legacy_engine(*dataset, legacy_options);
  core::EngineOptions bucketed_options = legacy_options;
  bucketed_options.shuffle_mode = ShuffleMode::kCellBucketed;
  core::SpqEngine bucketed_engine(*dataset, bucketed_options);

  std::vector<EndToEndResult> e2e;
  for (core::Algorithm algo :
       {core::Algorithm::kPSPQ, core::Algorithm::kESPQLen,
        core::Algorithm::kESPQSco}) {
    EndToEndResult row;
    row.algo = core::AlgorithmName(algo);
    for (const core::SpqEngine* engine : {&legacy_engine, &bucketed_engine}) {
      double best = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        auto result = engine->Execute(query, algo);
        if (!result.ok()) {
          std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
          return 1;
        }
        best = std::min(best, result->info.job.total_seconds);
      }
      if (engine == &legacy_engine) {
        row.legacy_seconds = best;
      } else {
        row.bucketed_seconds = best;
      }
    }
    std::printf("%-9s legacy %8.4fs   bucketed %8.4fs   speedup %.2fx\n",
                row.algo.c_str(), row.legacy_seconds, row.bucketed_seconds,
                row.legacy_seconds / row.bucketed_seconds);
    e2e.push_back(row);
  }

  // ---- Machine-readable output for cross-PR perf tracking ------------------
  std::ofstream json("BENCH_shuffle.json");
  json << "{\n  \"benchmark\": \"shuffle_ab\",\n  \"workloads\": [\n";
  for (std::size_t i = 0; i < ab_results.size(); ++i) {
    const AbResult& ab = ab_results[i];
    json << "    {\"name\": \"" << ab.name << "\", \"records\": "
         << ab.records << ", \"legacy_records_per_sec\": "
         << static_cast<uint64_t>(ab.legacy_rps)
         << ", \"bucketed_records_per_sec\": "
         << static_cast<uint64_t>(ab.bucketed_rps) << ", \"speedup\": "
         << ab.speedup() << "}" << (i + 1 < ab_results.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n  \"end_to_end\": [\n";
  for (std::size_t i = 0; i < e2e.size(); ++i) {
    json << "    {\"algorithm\": \"" << e2e[i].algo
         << "\", \"legacy_seconds\": " << e2e[i].legacy_seconds
         << ", \"bucketed_seconds\": " << e2e[i].bucketed_seconds << "}"
         << (i + 1 < e2e.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nWrote BENCH_shuffle.json\n");

  // The tentpole's acceptance bar: >= 1.5x records/sec on both workloads.
  bool ok = true;
  for (const AbResult& ab : ab_results) ok = ok && ab.speedup() >= 1.5;
  std::printf("acceptance (>=1.5x on uniform and clustered): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
