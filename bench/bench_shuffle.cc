// Ablation: shuffle composition per algorithm. All three algorithms ship
// the same object copies (identical pruning + Lemma-1 duplication); the
// composite key differs, and the keyword prefilter determines how much of
// F is shuffled at all. This bench reports shuffle bytes/records and the
// prefilter's selectivity as query keyword counts grow.

#include <cstdio>

#include "common/logging.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/engine.h"

int main() {
  using namespace spq;
  Logger::SetMinLevel(LogLevel::kWarn);

  auto dataset = datagen::MakeRealLikeDataset(
      datagen::FlickrLikeSpec(200'000));
  if (!dataset.ok()) return 1;
  core::EngineOptions options;
  options.grid_size = 50;
  core::SpqEngine engine(*std::move(dataset), options);

  std::printf("==== Ablation: shuffle volume and the keyword prefilter "
              "====\n\n");
  std::printf("%-9s %-9s %14s %14s %14s %16s\n", "keywords", "algo",
              "kept", "pruned", "duplicates", "shuffle bytes");

  for (uint32_t kw : {1u, 3u, 5u, 10u}) {
    datagen::WorkloadSpec spec;
    spec.num_keywords = kw;
    spec.radius = datagen::RadiusFromCellFraction(0.10, 1.0, 50);
    spec.k = 10;
    spec.term_zipf = 1.0;
    spec.vocab_size = 34'716;
    spec.seed = 2017;
    const auto query = datagen::MakeQuery(spec, 0);
    for (core::Algorithm algo :
         {core::Algorithm::kPSPQ, core::Algorithm::kESPQLen,
          core::Algorithm::kESPQSco}) {
      auto result = engine.Execute(query, algo);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const auto& info = result->info;
      std::printf("%-9u %-9s %14llu %14llu %14llu %16llu\n", kw,
                  core::AlgorithmName(algo).c_str(),
                  static_cast<unsigned long long>(info.features_kept),
                  static_cast<unsigned long long>(info.features_pruned),
                  static_cast<unsigned long long>(info.feature_duplicates),
                  static_cast<unsigned long long>(info.job.shuffle_bytes));
    }
  }
  std::printf("\nExpected: kept/pruned/duplicates identical across "
              "algorithms per keyword count; kept grows with more "
              "keywords (prefilter passes more features).\n");
  return 0;
}
