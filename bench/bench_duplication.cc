// Section 6.2 ablation: measured duplication factor vs. the closed form
// df = πr²/a² + 4r/a + 1, sweeping the r/a ratio. Measured two ways:
// geometrically (uniform points in an interior cell, counting Lemma-1
// targets) and end-to-end (an engine run's duplicate counter, which also
// sees boundary cells — slightly lower, since edge cells have fewer
// neighbors to duplicate into).

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "geo/grid.h"
#include "spq/duplication.h"
#include "spq/engine.h"

int main() {
  using namespace spq;
  Logger::SetMinLevel(LogLevel::kWarn);

  std::printf("==== Section 6.2: duplication factor df(r/a) ====\n\n");

  // --- geometric measurement on an interior cell -------------------------
  auto grid_or = geo::UniformGrid::Make(geo::Rect{0, 0, 1, 1}, 10, 10);
  if (!grid_or.ok()) return 1;
  const geo::UniformGrid& grid = *grid_or;
  const double a = grid.cell_width();
  const geo::Rect cell = grid.CellRect(grid.CellAt(5, 5));

  std::printf("%-8s %14s %14s %14s\n", "r/a", "analytic df",
              "interior cell", "engine run");

  Rng rng(7);
  for (double frac : {0.05, 0.10, 0.15, 0.25, 0.40, 0.50}) {
    const double r = frac * a;

    // Interior-cell Monte Carlo.
    uint64_t copies = 0;
    const int samples = 100'000;
    for (int i = 0; i < samples; ++i) {
      geo::Point p{rng.NextDouble(cell.min_x, cell.max_x),
                   rng.NextDouble(cell.min_y, cell.max_y)};
      copies += 1 + grid.CellsWithinDist(p, r).size();
    }
    const double measured_interior = static_cast<double>(copies) / samples;

    // End-to-end engine run (10x10 grid over the whole square).
    auto dataset = datagen::MakeUniformDataset(
        {.num_objects = 100'000, .seed = 42, .vocab_size = 4,
         .min_keywords = 1, .max_keywords = 3});
    if (!dataset.ok()) return 1;
    core::EngineOptions options;
    options.grid_size = 10;
    core::SpqEngine engine(*std::move(dataset), options);
    core::Query query;
    query.k = 10;
    query.radius = r;
    query.keywords = text::KeywordSet({0, 1, 2, 3});  // keep all features
    auto result = engine.Execute(query, core::Algorithm::kESPQSco);
    if (!result.ok()) return 1;

    std::printf("%-8.2f %14.4f %14.4f %14.4f\n", frac,
                core::AnalyticDuplicationFactor(r, a), measured_interior,
                result->info.MeasuredDuplicationFactor());
  }

  std::printf("\nworst-case analytic df at a = 2r: %.4f (= 3 + pi/4)\n\n",
              core::MaxDuplicationFactor());

  // --- zone probabilities (Figure 3) --------------------------------------
  std::printf("Zone probabilities at r/a = 0.25 (analytic vs sampled):\n");
  const double r = 0.25 * a;
  core::CellAreas areas = core::ComputeCellAreas(r, a);
  std::vector<uint64_t> zone_counts(4, 0);  // by duplicate count 3,2,1,0
  const int samples = 200'000;
  for (int i = 0; i < samples; ++i) {
    geo::Point p{rng.NextDouble(cell.min_x, cell.max_x),
                 rng.NextDouble(cell.min_y, cell.max_y)};
    const std::size_t dups = grid.CellsWithinDist(p, r).size();
    if (dups <= 3) ++zone_counts[3 - dups];
  }
  const double cell_area = a * a;
  const char* names[] = {"A1 (3 dups)", "A2 (2 dups)", "A3 (1 dup)",
                         "A4 (0 dups)"};
  const double analytic[] = {areas.a1 / cell_area, areas.a2 / cell_area,
                             areas.a3 / cell_area, areas.a4 / cell_area};
  for (int z = 0; z < 4; ++z) {
    std::printf("  %-12s analytic %.4f  sampled %.4f\n", names[z],
                analytic[z],
                static_cast<double>(zone_counts[z]) / samples);
  }
  return 0;
}
