#ifndef SPQ_BENCH_FIGURE_COMMON_H_
#define SPQ_BENCH_FIGURE_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "spq/engine.h"
#include "spq/types.h"

namespace spq::bench {

/// \brief One paper figure: a dataset plus the four parameter sweeps of
/// the evaluation (grid size, query keywords, radius, k), each regenerated
/// as a time series per algorithm.
///
/// Defaults follow Table 3 (bold values assumed: grid 50x50, |q.W|=3,
/// r=10% of cell, k=10). Dataset sizes are scaled down from the paper's
/// cluster-scale datasets; set SPQ_BENCH_SCALE to grow them.
struct FigureConfig {
  std::string title;

  core::Dataset dataset;
  /// Vocabulary/terms of the dataset, for workload generation.
  uint32_t vocab_size = 1'000;
  /// Zipf exponent of the dataset's term distribution (0 for UN/CL).
  double term_zipf = 0.0;

  std::vector<core::Algorithm> algorithms = {core::Algorithm::kPSPQ,
                                             core::Algorithm::kESPQLen,
                                             core::Algorithm::kESPQSco};

  uint32_t default_grid = 50;
  std::vector<uint32_t> grid_sizes = {35, 50, 75, 100};

  uint32_t default_keywords = 3;
  std::vector<uint32_t> keyword_counts = {1, 3, 5, 10};

  /// Radius as a percentage of the cell edge (Table 3).
  double default_radius_pct = 10.0;
  std::vector<double> radius_pcts = {10, 25, 50, 100};

  uint32_t default_k = 10;
  std::vector<uint32_t> ks = {5, 10, 50, 100};

  /// Queries averaged per data point (SPQ_BENCH_QUERIES overrides).
  uint32_t queries_per_point = 2;
  uint64_t workload_seed = 2017;
};

/// Applies the SPQ_BENCH_SCALE env multiplier (default 1.0) to a dataset
/// size, keeping at least 1000 objects.
uint64_t ScaledObjects(uint64_t base);

/// SPQ_BENCH_QUERIES override (0 = keep the config's value).
uint32_t QueriesPerPointOverride();

/// Runs all four sweeps of the figure and prints paper-style series
/// (x value vs. per-algorithm job time) plus the early-termination
/// measurements that explain them.
void RunFigure(const FigureConfig& config);

}  // namespace spq::bench

#endif  // SPQ_BENCH_FIGURE_COMMON_H_
