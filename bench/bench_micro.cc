// Google-benchmark microbenchmarks for the hot kernels under every figure:
// Jaccard merges, grid cell math and duplication targets, top-k updates,
// shuffle codec, and the k-way merge stream.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "geo/grid.h"
#include "mapreduce/merge.h"
#include "mapreduce/runtime.h"
#include "spq/shuffle_types.h"
#include "spq/topk.h"
#include "text/jaccard.h"

namespace spq {
namespace {

std::vector<text::TermId> RandomTerms(Rng& rng, std::size_t n,
                                      uint32_t vocab) {
  std::vector<text::TermId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(rng.NextUint32(vocab));
  return ids;
}

void BM_JaccardSorted(benchmark::State& state) {
  Rng rng(1);
  text::KeywordSet a(RandomTerms(rng, state.range(0), 1000));
  text::KeywordSet b(RandomTerms(rng, state.range(0), 1000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::JaccardSorted(a.ids(), b.ids()));
  }
}
BENCHMARK(BM_JaccardSorted)->Arg(8)->Arg(55)->Arg(100);

// The reducers' shape: a short query (first arg) against long feature
// keyword lists — the case the galloping intersection targets.
void BM_JaccardSortedAsymmetric(benchmark::State& state) {
  Rng rng(11);
  text::KeywordSet q(RandomTerms(rng, state.range(0), 100'000));
  text::KeywordSet f(RandomTerms(rng, state.range(1), 100'000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::JaccardSorted(q.ids(), f.ids()));
  }
}
BENCHMARK(BM_JaccardSortedAsymmetric)
    ->Args({3, 100})
    ->Args({3, 1000})
    ->Args({10, 1000});

// Same shape through the threshold-aware entry: with a tight threshold
// the size-ratio bound skips the merge entirely.
void BM_JaccardSortedBounded(benchmark::State& state) {
  Rng rng(12);
  text::KeywordSet q(RandomTerms(rng, 3, 100'000));
  text::KeywordSet f(RandomTerms(rng, state.range(0), 100'000));
  const double threshold = 0.5;  // > min/max for every arg below
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        text::JaccardSortedBounded(q.ids().data(), q.ids().size(),
                                   f.ids().data(), f.ids().size(), threshold));
  }
}
BENCHMARK(BM_JaccardSortedBounded)->Arg(100)->Arg(1000);

void BM_JaccardUpperBound(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::JaccardUpperBound(3, 57));
  }
}
BENCHMARK(BM_JaccardUpperBound);

void BM_GridCellOf(benchmark::State& state) {
  auto grid = geo::UniformGrid::Make(geo::Rect{0, 0, 1, 1}, 50, 50);
  Rng rng(2);
  std::vector<geo::Point> points(1024);
  for (auto& p : points) p = {rng.NextDouble(), rng.NextDouble()};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid->CellOf(points[i++ & 1023]));
  }
}
BENCHMARK(BM_GridCellOf);

void BM_GridDuplicationTargets(benchmark::State& state) {
  auto grid = geo::UniformGrid::Make(geo::Rect{0, 0, 1, 1}, 50, 50);
  const double r = 0.02 * static_cast<double>(state.range(0)) / 100.0;
  Rng rng(3);
  std::vector<geo::Point> points(1024);
  for (auto& p : points) p = {rng.NextDouble(), rng.NextDouble()};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid->CellsWithinDist(points[i++ & 1023], r));
  }
}
BENCHMARK(BM_GridDuplicationTargets)->Arg(10)->Arg(50)->Arg(100);

void BM_TopKUpdate(benchmark::State& state) {
  Rng rng(4);
  std::vector<std::pair<core::ObjectId, double>> updates(4096);
  for (auto& u : updates) {
    u = {rng.NextUint64(500), rng.NextDouble()};
  }
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    core::TopKList lk(k);
    for (const auto& [id, score] : updates) lk.Update(id, score);
    benchmark::DoNotOptimize(lk.Threshold());
  }
  state.SetItemsProcessed(state.iterations() * updates.size());
}
BENCHMARK(BM_TopKUpdate)->Arg(10)->Arg(100);

void BM_ShuffleObjectCodec(benchmark::State& state) {
  Rng rng(5);
  core::ShuffleObject obj;
  obj.kind = core::ShuffleObject::kFeature;
  obj.id = 123456;
  obj.pos = {0.5, 0.25};
  obj.keywords = text::KeywordSet(RandomTerms(rng, 55, 1000)).ids();
  for (auto _ : state) {
    Buffer buf;
    mapreduce::Codec<core::ShuffleObject>::Encode(obj, buf);
    BufferReader reader(buf.data(), buf.size());
    core::ShuffleObject out;
    benchmark::DoNotOptimize(
        mapreduce::Codec<core::ShuffleObject>::Decode(reader, &out));
  }
}
BENCHMARK(BM_ShuffleObjectCodec);

void BM_MergeStream(benchmark::State& state) {
  // Merge 8 sorted segments of 1000 records each.
  Rng rng(6);
  std::vector<mapreduce::SortedSegment> segments(8);
  for (auto& seg : segments) {
    std::vector<std::pair<uint32_t, uint64_t>> records(1000);
    for (auto& r : records) r = {rng.NextUint32(10000), rng.NextUint64()};
    std::sort(records.begin(), records.end());
    Buffer buf;
    for (const auto& [k, v] : records) {
      mapreduce::Codec<uint32_t>::Encode(k, buf);
      mapreduce::Codec<uint64_t>::Encode(v, buf);
    }
    seg.num_records = records.size();
    seg.bytes = buf.TakeBytes();
  }
  std::vector<const mapreduce::SortedSegment*> ptrs;
  for (const auto& s : segments) ptrs.push_back(&s);
  for (auto _ : state) {
    mapreduce::MergeStream<uint32_t, uint64_t> stream(
        ptrs, [](const uint32_t& a, const uint32_t& b) { return a < b; });
    uint64_t sum = 0;
    while (stream.Advance()) sum += stream.value();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 8000);
}
BENCHMARK(BM_MergeStream);

// Same merge with the comparator as a concrete template parameter (direct
// calls) instead of the defaulted std::function — the indirection cost the
// Less parameter exists to avoid.
void BM_MergeStreamConcreteLess(benchmark::State& state) {
  Rng rng(6);
  std::vector<mapreduce::SortedSegment> segments(8);
  for (auto& seg : segments) {
    std::vector<std::pair<uint32_t, uint64_t>> records(1000);
    for (auto& r : records) r = {rng.NextUint32(10000), rng.NextUint64()};
    std::sort(records.begin(), records.end());
    Buffer buf;
    for (const auto& [k, v] : records) {
      mapreduce::Codec<uint32_t>::Encode(k, buf);
      mapreduce::Codec<uint64_t>::Encode(v, buf);
    }
    seg.num_records = records.size();
    seg.bytes = buf.TakeBytes();
  }
  std::vector<const mapreduce::SortedSegment*> ptrs;
  for (const auto& s : segments) ptrs.push_back(&s);
  struct Less {
    bool operator()(const uint32_t& a, const uint32_t& b) const {
      return a < b;
    }
  };
  for (auto _ : state) {
    mapreduce::MergeStream<uint32_t, uint64_t, Less> stream(ptrs, Less{});
    uint64_t sum = 0;
    while (stream.Advance()) sum += stream.value();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 8000);
}
BENCHMARK(BM_MergeStreamConcreteLess);

// The flat-arena twin of BM_MergeStream on realistic SPQ records: 8
// segments of pre-bucketed (CellKey, ShuffleObject) runs merged with the
// integer-key heap and zero-copy views.
void BM_FlatMergeStream(benchmark::State& state) {
  Rng rng(7);
  std::vector<mapreduce::FlatSegment> segments;
  for (int s = 0; s < 8; ++s) {
    std::vector<std::pair<core::CellKey, core::ShuffleObject>> records(1000);
    for (auto& [k, v] : records) {
      k.cell = rng.NextUint32(100);
      k.order = -rng.NextDouble();
      v.kind = core::ShuffleObject::kFeature;
      v.id = rng.NextUint64();
      v.pos = {rng.NextDouble(), rng.NextDouble()};
      v.keywords = text::KeywordSet(RandomTerms(rng, 8, 10'000)).ids();
    }
    segments.push_back(
        *mapreduce::internal::BuildFlatSegment<core::CellKey,
                                               core::ShuffleObject>(records));
  }
  std::vector<const mapreduce::FlatSegment*> ptrs;
  for (const auto& s : segments) ptrs.push_back(&s);
  for (auto _ : state) {
    mapreduce::FlatMergeStream<core::CellKey, core::ShuffleObject> stream(
        ptrs);
    uint64_t sum = 0;
    while (stream.Advance()) sum += stream.value().id;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 8000);
}
BENCHMARK(BM_FlatMergeStream);

// Merge-structure A/B at configurable fan-in: binary heap (up to two
// comparisons per level per record) vs. tournament loser tree (exactly
// one). The fan-ins bracket FlatMergeStream::kLoserTreeMinFanIn, the
// point where kAuto switches over.
void FlatMergeStrategyBench(benchmark::State& state,
                            mapreduce::MergeStrategy strategy) {
  const std::size_t fan_in = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  std::vector<mapreduce::FlatSegment> segments;
  for (std::size_t s = 0; s < fan_in; ++s) {
    std::vector<std::pair<core::CellKey, core::ShuffleObject>> records(512);
    for (auto& [k, v] : records) {
      k.cell = rng.NextUint32(100);
      k.order = -rng.NextDouble();
      v.kind = core::ShuffleObject::kFeature;
      v.id = rng.NextUint64();
      v.pos = {rng.NextDouble(), rng.NextDouble()};
      v.keywords = text::KeywordSet(RandomTerms(rng, 8, 10'000)).ids();
    }
    segments.push_back(
        *mapreduce::internal::BuildFlatSegment<core::CellKey,
                                               core::ShuffleObject>(records));
  }
  std::vector<const mapreduce::FlatSegment*> ptrs;
  for (const auto& s : segments) ptrs.push_back(&s);
  for (auto _ : state) {
    mapreduce::FlatMergeStream<core::CellKey, core::ShuffleObject> stream(
        ptrs, strategy);
    uint64_t sum = 0;
    while (stream.Advance()) sum += stream.value().id;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * fan_in * 512);
}

void BM_FlatMergeHeap(benchmark::State& state) {
  FlatMergeStrategyBench(state, mapreduce::MergeStrategy::kBinaryHeap);
}
BENCHMARK(BM_FlatMergeHeap)->Arg(4)->Arg(8)->Arg(32)->Arg(64);

void BM_FlatMergeLoserTree(benchmark::State& state) {
  FlatMergeStrategyBench(state, mapreduce::MergeStrategy::kLoserTree);
}
BENCHMARK(BM_FlatMergeLoserTree)->Arg(4)->Arg(8)->Arg(32)->Arg(64);

// Map-side layout step A/B: comparison stable_sort + Codec encode (legacy)
// vs. cell bucketing + u64 order-key sort into the flat arena. Both
// variants copy the emitted records inside the timed loop (the legacy sort
// must mutate; the bucketed path gets the same copy so the ratio reflects
// only the layout step).
void BM_MapSortEncodeLegacy(benchmark::State& state) {
  Rng rng(8);
  std::vector<std::pair<core::CellKey, core::ShuffleObject>> records(4096);
  for (auto& [k, v] : records) {
    k.cell = rng.NextUint32(100);
    k.order = -rng.NextDouble();
    v.kind = core::ShuffleObject::kFeature;
    v.id = rng.NextUint64();
    v.keywords = text::KeywordSet(RandomTerms(rng, 8, 10'000)).ids();
  }
  std::function<bool(const core::CellKey&, const core::CellKey&)> less =
      core::CellKeySortLess;
  for (auto _ : state) {
    auto copy = records;
    std::stable_sort(copy.begin(), copy.end(),
                     [&](const auto& a, const auto& b) {
                       return less(a.first, b.first);
                     });
    Buffer buf;
    for (const auto& [k, v] : copy) {
      mapreduce::Codec<core::CellKey>::Encode(k, buf);
      mapreduce::Codec<core::ShuffleObject>::Encode(v, buf);
    }
    benchmark::DoNotOptimize(buf.size());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_MapSortEncodeLegacy);

void BM_MapSortEncodeBucketed(benchmark::State& state) {
  Rng rng(8);
  std::vector<std::pair<core::CellKey, core::ShuffleObject>> records(4096);
  for (auto& [k, v] : records) {
    k.cell = rng.NextUint32(100);
    k.order = -rng.NextDouble();
    v.kind = core::ShuffleObject::kFeature;
    v.id = rng.NextUint64();
    v.keywords = text::KeywordSet(RandomTerms(rng, 8, 10'000)).ids();
  }
  for (auto _ : state) {
    auto copy = records;
    auto seg = mapreduce::internal::BuildFlatSegment<core::CellKey,
                                                     core::ShuffleObject>(
        copy);
    benchmark::DoNotOptimize(seg->byte_size);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_MapSortEncodeBucketed);

}  // namespace
}  // namespace spq

BENCHMARK_MAIN();
