// Regenerates Figure 5 (a-d): the four parameter sweeps on the Flickr-like
// dataset. Paper scale: 40M objects on 16 machines; default here: 200k
// objects on one machine (SPQ_BENCH_SCALE multiplies).
//
// Expected shape (paper): eSPQsco < eSPQlen << pSPQ across all sweeps;
// pSPQ grows with keywords and radius, the early-termination algorithms
// stay nearly flat; all improve with more grid cells; k barely matters.

#include <cstdio>

#include "bench/figure_common.h"
#include "datagen/generator.h"

int main() {
  using namespace spq;
  auto dataset = datagen::MakeRealLikeDataset(
      datagen::FlickrLikeSpec(bench::ScaledObjects(400'000)));
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  bench::FigureConfig config;
  config.title = "Figure 5: Flickr-like (FL) dataset";
  config.dataset = *std::move(dataset);
  config.vocab_size = 34'716;
  config.term_zipf = 1.0;
  bench::RunFigure(config);
  return 0;
}
