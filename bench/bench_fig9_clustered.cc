// Regenerates Figure 9 (a-d): the four parameter sweeps on the Clustered
// (CL) synthetic dataset. As in the paper, pSPQ is excluded — on CL its
// quadratic per-reducer cost explodes on the overloaded cells (the paper
// measured ~48 hours for the default setup).

#include <cstdio>

#include "bench/figure_common.h"
#include "datagen/generator.h"

int main() {
  using namespace spq;
  auto dataset = datagen::MakeClusteredDataset(
      {.num_objects = bench::ScaledObjects(800'000), .seed = 42,
       .num_clusters = 16});
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  bench::FigureConfig config;
  config.title =
      "Figure 9: Clustered (CL) dataset (pSPQ omitted, as in the paper)";
  config.dataset = *std::move(dataset);
  config.vocab_size = 1'000;
  config.term_zipf = 0.0;
  config.algorithms = {core::Algorithm::kESPQLen, core::Algorithm::kESPQSco};
  config.default_grid = 10;
  config.grid_sizes = {10, 15, 50, 100};
  config.radius_pcts = {5, 10, 15, 50, 100};
  bench::RunFigure(config);
  return 0;
}
