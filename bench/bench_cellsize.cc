// Section 6.3 ablation: per-reducer cost vs. cell size. The paper argues
// the per-reducer work is proportional to df(r,a) · a⁴ (normalized space),
// so larger cells are strictly worse for a fixed radius. This bench fixes
// r and sweeps the grid size (hence a = 1/G), reporting the cost model
// next to measured per-reducer pair tests and the pSPQ job time.

#include <cstdio>

#include "common/logging.h"
#include "datagen/generator.h"
#include "spq/duplication.h"
#include "spq/engine.h"

int main() {
  using namespace spq;
  Logger::SetMinLevel(LogLevel::kWarn);

  auto dataset = datagen::MakeUniformDataset(
      {.num_objects = 200'000, .seed = 42});
  if (!dataset.ok()) return 1;
  core::SpqEngine engine(*std::move(dataset), core::EngineOptions{});

  const double r = 0.002;  // fixed query radius
  core::Query query;
  query.k = 10;
  query.radius = r;
  query.keywords = text::KeywordSet({1, 2, 3});

  std::printf("==== Section 6.3: cell size vs per-reducer cost (r=%.4f) "
              "====\n\n", r);
  std::printf("%-6s %-10s %16s %16s %14s %12s\n", "grid", "a", "model df*a^4",
              "pairs/reducer", "max pairs*", "pSPQ time");
  std::printf("  (*max pairs approximated by max reduce partition records "
              "squared share)\n");

  for (uint32_t g : {5u, 10u, 20u, 50u, 100u}) {
    const double a = 1.0 / g;
    auto result = engine.Execute(query, core::Algorithm::kPSPQ, g);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const auto& info = result->info;
    const double pairs_per_reducer =
        static_cast<double>(info.pairs_tested) / info.num_reduce_tasks;
    std::printf("%-6u %-10.4f %16.6e %16.1f %14llu %12.4f\n", g, a,
                core::ReducerCostModel(r, a), pairs_per_reducer,
                static_cast<unsigned long long>(
                    info.job.MaxReduceRecords()),
                info.job.total_seconds);
  }
  std::printf("\nExpected: every column decreases as the grid refines — "
              "matching df·a⁴.\n");
  return 0;
}
