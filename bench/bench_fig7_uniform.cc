// Regenerates Figure 7 (a-d): the four parameter sweeps on the Uniform
// (UN) synthetic dataset. Paper scale: 512M objects; default here: 400k
// (SPQ_BENCH_SCALE multiplies). Grid sizes and the extra 5% radius point
// follow the paper's UN/CL parameter table.

#include <cstdio>

#include "bench/figure_common.h"
#include "datagen/generator.h"

int main() {
  using namespace spq;
  auto dataset = datagen::MakeUniformDataset(
      {.num_objects = bench::ScaledObjects(800'000), .seed = 42});
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  bench::FigureConfig config;
  config.title = "Figure 7: Uniform (UN) dataset";
  config.dataset = *std::move(dataset);
  config.vocab_size = 1'000;
  config.term_zipf = 0.0;
  // UN/CL parameter row of Table 3; default grid 10x10 so that cells carry
  // enough objects for the per-reducer contrast to show at reduced scale.
  config.default_grid = 10;
  config.grid_sizes = {10, 15, 50, 100};
  config.radius_pcts = {5, 10, 15, 50, 100};
  bench::RunFigure(config);
  return 0;
}
