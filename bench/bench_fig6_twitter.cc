// Regenerates Figure 6 (a-d): the four parameter sweeps on the
// Twitter-like dataset (2x the Flickr-like object count, larger
// vocabulary, more keywords per object — matching the 80M-tweet dataset's
// statistics at reduced scale).

#include <cstdio>

#include "bench/figure_common.h"
#include "datagen/generator.h"

int main() {
  using namespace spq;
  auto dataset = datagen::MakeRealLikeDataset(
      datagen::TwitterLikeSpec(bench::ScaledObjects(800'000)));
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  bench::FigureConfig config;
  config.title = "Figure 6: Twitter-like (TW) dataset";
  config.dataset = *std::move(dataset);
  config.vocab_size = 88'706;
  config.term_zipf = 1.0;
  bench::RunFigure(config);
  return 0;
}
