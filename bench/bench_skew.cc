// Backs the Section 7.2.4 discussion: clustered data makes it "hard to
// fairly assign the objects to Reducers, thus typically some Reducers are
// overburdened". Reports reduce-partition skew (max/mean records) and the
// straggler ratio (max/mean reduce task time) for UN vs CL across grid
// sizes — finer grids shrink the hottest partition.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/engine.h"

int main() {
  using namespace spq;
  Logger::SetMinLevel(LogLevel::kWarn);

  std::vector<std::pair<std::string, core::Dataset>> datasets;
  {
    auto un = datagen::MakeUniformDataset({.num_objects = 400'000, .seed = 6});
    auto cl = datagen::MakeClusteredDataset(
        {.num_objects = 400'000, .seed = 6, .num_clusters = 16});
    if (!un.ok() || !cl.ok()) return 1;
    datasets.emplace_back("UN", *std::move(un));
    datasets.emplace_back("CL", *std::move(cl));
  }

  std::printf("==== Section 7.2.4: reducer load imbalance, UN vs CL "
              "(eSPQsco) ====\n\n");
  std::printf("%-9s %-6s %16s %14s %16s %12s\n", "dataset", "grid",
              "max partition", "record skew", "straggler ratio", "time(s)");

  for (const auto& [name, dataset] : datasets) {
    core::SpqEngine engine(dataset, core::EngineOptions{});
    for (uint32_t grid : {10u, 15u, 50u, 100u}) {
      datagen::WorkloadSpec spec;
      spec.num_keywords = 3;
      spec.radius = datagen::RadiusFromCellFraction(0.10, 1.0, grid);
      spec.k = 10;
      spec.vocab_size = 1'000;
      spec.seed = 2017;
      const auto query = datagen::MakeQuery(spec, 0);
      auto result = engine.Execute(query, core::Algorithm::kESPQSco, grid);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const auto& job = result->info.job;
      std::printf("%-9s %-6u %16llu %14.2f %16.2f %12.4f\n", name.c_str(),
                  grid,
                  static_cast<unsigned long long>(job.MaxReduceRecords()),
                  job.ReduceSkew(), job.ReduceStragglerRatio(),
                  job.total_seconds);
    }
  }
  std::printf("\nExpected: CL skew >> UN skew at every grid size; finer "
              "grids reduce the absolute size of the hottest partition.\n");
  return 0;
}
