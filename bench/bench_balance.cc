// Extension ablation: modulo vs LPT-balanced cell-to-reducer assignment
// when reducers are scarcer than cells (R = 16 "machines", like the
// paper's cluster). Addresses the Section 7.2.4 observation that clustered
// data overburdens some reducers. The balanced partitioner uses the
// Section 6.1 cost model |O_i|·|F_i| per cell.

#include <cstdio>

#include "common/logging.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/engine.h"

int main() {
  using namespace spq;
  Logger::SetMinLevel(LogLevel::kWarn);

  auto dataset = datagen::MakeClusteredDataset(
      {.num_objects = 800'000, .seed = 21, .num_clusters = 16});
  if (!dataset.ok()) return 1;

  std::printf("==== Extension: balanced cell->reducer assignment (CL, "
              "R=16) ====\n\n");
  std::printf("%-6s %-10s %14s %12s %16s %12s\n", "grid", "assign",
              "max partition", "record skew", "straggler ratio", "time(s)");

  for (uint32_t grid : {20u, 50u, 100u}) {
    datagen::WorkloadSpec spec;
    spec.num_keywords = 3;
    spec.radius = datagen::RadiusFromCellFraction(0.10, 1.0, grid);
    spec.k = 10;
    spec.vocab_size = 1'000;
    spec.seed = 2017;
    const auto query = datagen::MakeQuery(spec, 0);
    for (auto kind :
         {core::PartitionerKind::kModulo, core::PartitionerKind::kBalanced}) {
      core::EngineOptions options;
      options.grid_size = grid;
      options.num_reduce_tasks = 16;
      options.num_workers = 16;
      options.partitioner = kind;
      core::SpqEngine engine(*dataset, options);
      auto result = engine.Execute(query, core::Algorithm::kESPQLen);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const auto& job = result->info.job;
      std::printf("%-6u %-10s %14llu %12.2f %16.2f %12.4f\n", grid,
                  kind == core::PartitionerKind::kModulo ? "modulo"
                                                         : "balanced",
                  static_cast<unsigned long long>(job.MaxReduceRecords()),
                  job.ReduceSkew(), job.ReduceStragglerRatio(),
                  job.total_seconds);
    }
  }
  std::printf("\nExpected: balanced assignment cuts record skew and the "
              "straggler ratio; identical query answers either way.\n");
  return 0;
}
