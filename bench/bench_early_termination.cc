// Ablation: the early-termination mechanism itself — what fraction of the
// shuffled feature copies each algorithm's reducers actually consume, per
// dataset family. This is the quantity behind every runtime figure: pSPQ
// reads 100%, eSPQlen stops at the Lemma-2 bound, eSPQsco usually stops
// after a handful of features per cell (Lemma 3).

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "spq/engine.h"

int main() {
  using namespace spq;
  Logger::SetMinLevel(LogLevel::kWarn);

  std::vector<std::pair<std::string, core::Dataset>> datasets;
  {
    auto un = datagen::MakeUniformDataset({.num_objects = 200'000, .seed = 1});
    auto cl = datagen::MakeClusteredDataset(
        {.num_objects = 200'000, .seed = 2, .num_clusters = 16});
    auto fl = datagen::MakeRealLikeDataset(datagen::FlickrLikeSpec(200'000));
    if (!un.ok() || !cl.ok() || !fl.ok()) return 1;
    datasets.emplace_back("UN", *std::move(un));
    datasets.emplace_back("CL", *std::move(cl));
    datasets.emplace_back("FL-like", *std::move(fl));
  }

  std::printf("==== Ablation: features examined / features shuffled "
              "====\n\n");
  std::printf("%-9s %-9s %14s %14s %10s %14s\n", "dataset", "algo",
              "shuffled", "examined", "ratio", "early stops");

  for (const auto& [name, dataset] : datasets) {
    const bool zipf_terms = name == "FL-like";
    datagen::WorkloadSpec spec;
    spec.num_keywords = 3;
    spec.radius = datagen::RadiusFromCellFraction(0.10, 1.0, 50);
    spec.k = 10;
    spec.term_zipf = zipf_terms ? 1.0 : 0.0;
    spec.vocab_size = zipf_terms ? 34'716 : 1'000;
    spec.seed = 2017;
    const auto query = datagen::MakeQuery(spec, 0);

    core::EngineOptions options;
    options.grid_size = 50;
    core::SpqEngine engine(dataset, options);
    for (core::Algorithm algo :
         {core::Algorithm::kPSPQ, core::Algorithm::kESPQLen,
          core::Algorithm::kESPQSco}) {
      auto result = engine.Execute(query, algo);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const auto& info = result->info;
      std::printf("%-9s %-9s %14llu %14llu %9.2f%% %14llu\n", name.c_str(),
                  core::AlgorithmName(algo).c_str(),
                  static_cast<unsigned long long>(
                      info.features_kept + info.feature_duplicates),
                  static_cast<unsigned long long>(info.features_examined),
                  100.0 * info.FeatureExaminationRatio(),
                  static_cast<unsigned long long>(info.early_terminations));
    }
  }
  return 0;
}
