// Backs the paper's Section 7.1 remark that "centralized processing of
// this query type is infeasible in practice": compares centralized
// brute-force scanning, a centralized grid-indexed scan, a centralized
// inverted-index + aggregate-R-tree evaluator (the index family of the
// paper's centralized related work), and the parallel engine (eSPQsco) as
// the dataset grows. Indexes help enormously — but they are built over
// the whole dataset in one process, which is exactly what stops working
// at the paper's 40M-512M scale; the parallel column is the alternative.

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "index/centralized.h"
#include "spq/engine.h"
#include "spq/sequential.h"

int main() {
  using namespace spq;
  Logger::SetMinLevel(LogLevel::kWarn);

  std::printf("==== Centralized vs parallel evaluation ====\n\n");
  std::printf("%-12s %14s %14s %16s %14s\n", "objects", "brute force",
              "grid scan", "inv.idx+aRtree", "eSPQsco (MR)");

  datagen::WorkloadSpec spec;
  spec.num_keywords = 3;
  spec.radius = datagen::RadiusFromCellFraction(0.10, 1.0, 50);
  spec.k = 10;
  spec.vocab_size = 1'000;
  spec.seed = 2017;
  const auto query = datagen::MakeQuery(spec, 0);

  for (uint64_t n : {20'000ull, 50'000ull, 100'000ull, 200'000ull,
                     400'000ull}) {
    auto dataset = datagen::MakeUniformDataset({.num_objects = n, .seed = 4});
    if (!dataset.ok()) return 1;

    std::printf("%-12llu", static_cast<unsigned long long>(n));

    if (n <= 100'000) {
      Stopwatch watch;
      auto brute = core::BruteForceSpq(*dataset, query);
      std::printf(" %13.4fs", watch.ElapsedSeconds());
    } else {
      std::printf(" %14s", "(skipped)");
    }

    {
      Stopwatch watch;
      auto seq = core::SequentialGridSpq(*dataset, query, 50);
      if (!seq.ok()) return 1;
      std::printf(" %13.4fs", watch.ElapsedSeconds());
    }

    {
      // Index build time is excluded (build-once, query-many), mirroring
      // how the centralized literature reports query latency.
      index::CentralizedSpqIndex evaluator(&*dataset);
      Stopwatch watch;
      auto result = evaluator.Execute(query);
      std::printf(" %15.4fs", watch.ElapsedSeconds());
    }

    {
      core::EngineOptions options;
      options.grid_size = 50;
      core::SpqEngine engine(*std::move(dataset), options);
      auto result = engine.Execute(query, core::Algorithm::kESPQSco);
      if (!result.ok()) return 1;
      std::printf(" %13.4fs\n", result->info.job.total_seconds);
    }
  }
  std::printf("\nNote: the parallel column excludes dataset loading (the "
              "engine's input lives in 'HDFS'); the centralized columns "
              "scan/probe in-process memory.\n");
  return 0;
}
